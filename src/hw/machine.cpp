#include "hw/machine.hpp"

#include "support/faultplan.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace mv::hw {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      mem_(config.dram_bytes, config.sockets),
      paging_(mem_) {
  for (unsigned s = 0; s < config.sockets; ++s) {
    for (unsigned c = 0; c < config.cores_per_socket; ++c) {
      const auto id = static_cast<unsigned>(cores_.size());
      cores_.push_back(std::make_unique<Core>(*this, id, s));
    }
  }
  // This machine's per-core cycle counters become the tracer's simulated
  // clock (the newest machine wins when tests build several).
  Tracer& tracer = Tracer::instance();
  tracer.bind_clock(this, [this](unsigned core_id) -> std::uint64_t {
    return core_id < cores_.size() ? cores_[core_id]->cycles() : 0;
  });
  for (const auto& c : cores_) {
    tracer.set_track_name(
        c->id(), strfmt("core%u (socket%u)", c->id(), c->socket()));
  }
}

Machine::~Machine() { Tracer::instance().clear_clock(this); }

Status Machine::send_ipi(unsigned from, unsigned to, std::uint8_t vector,
                         std::uint64_t payload) {
  if (to >= cores_.size()) return err(Err::kInval, "IPI to bad core");
  ++ipis_sent_;
  core(from).charge(costs().tlb_shootdown_ipi / 2);  // send half
  InterruptFrame frame;
  frame.vector = vector;
  frame.payload = payload;
  return core(to).deliver(frame);
}

void Machine::shootdown_ipi_round(Core& init, unsigned target) {
  init.charge(costs().tlb_shootdown_ipi);
  ++ipis_sent_;
  // Multi-tenant runs resolve the governing plan by initiating core so one
  // tenant's IPI-fault schedule never perturbs another tenant's shootdowns.
  FaultPlan* plan =
      ipi_fault_resolver_ ? ipi_fault_resolver_(init.id()) : fault_plan_;
  if (plan != nullptr &&
      plan->should_inject(FaultClass::kDropShootdownIpi, init.cycles())) {
    // The IPI was lost on the wire. The initiator's ack timeout expires and
    // it resends — a full extra round. Recovery is bounded and local, so the
    // invalidation below still happens; only latency (and the IPI count)
    // shows the fault.
    plan->note_injected(FaultClass::kDropShootdownIpi);
    init.charge(costs().tlb_shootdown_ipi);
    ++ipis_sent_;
    plan->note_recovered(FaultClass::kDropShootdownIpi);
  }
  (void)target;
}

void Machine::tlb_shootdown(unsigned initiator,
                            const std::vector<unsigned>& targets,
                            std::uint64_t vaddr) {
  Core& init = core(initiator);
  for (unsigned t : targets) {
    shootdown_ipi_round(init, t);
    Core& target = core(t);
    if (vaddr == 0) {
      target.tlb().flush();
    } else {
      target.tlb().invalidate_page(vaddr);
    }
  }
  // Initiator flushes its own TLB entry too.
  if (vaddr == 0) {
    init.tlb().flush();
  } else {
    init.tlb().invalidate_page(vaddr);
  }
}

void Machine::tlb_shootdown(unsigned initiator,
                            const std::vector<unsigned>& targets,
                            const std::vector<std::uint64_t>& vaddrs) {
  if (vaddrs.empty()) return;
  Core& init = core(initiator);
  for (unsigned t : targets) {
    shootdown_ipi_round(init, t);
    Core& target = core(t);
    for (const std::uint64_t va : vaddrs) {
      target.tlb().invalidate_page(va);
    }
  }
  for (const std::uint64_t va : vaddrs) {
    init.tlb().invalidate_page(va);
  }
}

}  // namespace mv::hw
