#pragma once

// x86-64 4-level paging, implemented literally: page tables are radix trees of
// 64-bit entries stored in simulated physical memory. The Multiverse address
// space merger copies PML4 entries between roots exactly as the paper's
// implementation does, so the structures here are the real mechanism under
// test, not a stand-in.

#include <cstdint>
#include <functional>
#include <optional>

#include "hw/phys_mem.hpp"
#include "support/result.hpp"

namespace mv::hw {

// Page table entry flag bits (subset of the architectural layout).
enum PteFlags : std::uint64_t {
  kPtePresent = 1ull << 0,
  kPteWrite = 1ull << 1,
  kPteUser = 1ull << 2,
  kPteAccessed = 1ull << 5,
  kPteDirty = 1ull << 6,
  kPtePs = 1ull << 7,  // large page (2 MiB when set on a PD entry)
  kPteNx = 1ull << 63,
};

inline constexpr std::uint64_t kLargePageSize = 2ull << 20;  // 2 MiB

inline constexpr std::uint64_t kPteAddrMask = 0x000ffffffffff000ull;
inline constexpr int kPml4Entries = 512;
// The merger copies the user half: entries [0, 256) of the PML4.
inline constexpr int kUserPml4Entries = 256;

enum class Access { kRead, kWrite, kExec };

// Page-fault details in architectural error-code form.
struct PageFaultInfo {
  std::uint64_t vaddr = 0;
  bool present = false;      // error code bit 0: protection (vs not-present)
  bool write = false;        // bit 1
  bool user = false;         // bit 2
  bool instruction = false;  // bit 4
  [[nodiscard]] std::uint32_t error_code() const noexcept {
    return (present ? 1u : 0u) | (write ? 2u : 0u) | (user ? 4u : 0u) |
           (instruction ? 16u : 0u);
  }
};

struct TranslateOk {
  std::uint64_t paddr = 0;
  std::uint64_t flags = 0;  // effective leaf flags
};

// Canonical form: bits [63:48] must equal bit 47.
[[nodiscard]] bool is_canonical(std::uint64_t vaddr) noexcept;
[[nodiscard]] bool is_higher_half(std::uint64_t vaddr) noexcept;

// Index helpers (level 4 = PML4 ... level 1 = PT).
[[nodiscard]] unsigned pt_index(std::uint64_t vaddr, int level) noexcept;

// Operations on a page-table hierarchy rooted at a CR3 physical address.
class PageTables {
 public:
  explicit PageTables(PhysMem& mem) : mem_(&mem) {}

  // Allocate an empty top-level table; returns its physical address (CR3).
  Result<std::uint64_t> new_root(unsigned zone = 0);

  // Map one 4 KiB page. `flags` must include kPtePresent. Intermediate tables
  // are created with Present|Write|User so leaf flags alone govern access.
  Status map_page(std::uint64_t root, std::uint64_t vaddr, std::uint64_t paddr,
                  std::uint64_t flags, unsigned zone = 0);

  // Map one 2 MiB page (a PS-bit PD entry). vaddr and paddr must be 2 MiB
  // aligned. Real Nautilus identity-maps its higher half this way.
  Status map_large_page(std::uint64_t root, std::uint64_t vaddr,
                        std::uint64_t paddr, std::uint64_t flags,
                        unsigned zone = 0);

  // Remove one mapping; returns the old physical address if it existed.
  Result<std::uint64_t> unmap_page(std::uint64_t root, std::uint64_t vaddr);

  // Change leaf flags of an existing mapping.
  Status protect_page(std::uint64_t root, std::uint64_t vaddr,
                      std::uint64_t flags);

  // Walk without access checks; returns entry if present.
  [[nodiscard]] std::optional<TranslateOk> lookup(std::uint64_t root,
                                                  std::uint64_t vaddr) const;

  // Full architectural translation with permission checks.
  // `cpl` is 0 (kernel) or 3 (user); `cr0_wp` applies the ring-0 write-
  // protect quirk the paper discusses: with WP clear, ring-0 writes to
  // read-only pages silently succeed.
  Result<TranslateOk> translate(std::uint64_t root, std::uint64_t vaddr,
                                Access access, int cpl, bool cr0_wp,
                                PageFaultInfo* fault) const;

  // Raw PML4 entry access (used by the HVM address-space merger).
  [[nodiscard]] std::uint64_t read_pml4_entry(std::uint64_t root,
                                              int index) const;
  void write_pml4_entry(std::uint64_t root, int index, std::uint64_t entry);

  // Recursively free a hierarchy: the root plus all intermediate tables.
  // Leaf data frames are NOT freed (they belong to their owners).
  void free_hierarchy(std::uint64_t root);

  // Visit every present leaf mapping (for tests and RSS accounting).
  void for_each_mapping(
      std::uint64_t root,
      const std::function<void(std::uint64_t vaddr, const TranslateOk&)>& fn)
      const;

  // Walk depth in table levels touched by the last translate (cost model).
  static constexpr int kWalkLevels = 4;

 private:
  [[nodiscard]] std::uint64_t entry_at(std::uint64_t table,
                                       unsigned index) const;
  void set_entry_at(std::uint64_t table, unsigned index, std::uint64_t entry);
  // Descend one level, optionally creating the next table.
  Result<std::uint64_t> descend(std::uint64_t table, unsigned index,
                                bool create, unsigned zone);

  void free_level(std::uint64_t table, int level);
  void visit_level(
      std::uint64_t table, int level, std::uint64_t vaddr_prefix,
      const std::function<void(std::uint64_t, const TranslateOk&)>& fn) const;

  PhysMem* mem_;
};

}  // namespace mv::hw
