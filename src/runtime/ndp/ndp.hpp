#pragma once

// "Rill": a small home-grown data-parallel language that compiles to VCODE —
// the third of the paper's hand-ported runtimes ("the runtime of a
// home-grown nested data parallel language"). Rill is flat rather than
// nested (our VCODE carries no segment descriptors), but the pipeline is the
// real thing: source -> compiler -> VCODE instruction stream -> vector VM,
// all executing over the guest OS interface and therefore hybridizable.
//
// Syntax:
//   program  := { "let" NAME "=" expr | "print" expr }
//   expr     := sum ( ("<" | ">" | "==") sum )?
//   sum      := product { ("+" | "-") product }
//   product  := atom { ("*" | "/") atom }
//   atom     := NUMBER | NAME | "(" expr ")"
//             | "iota" "(" expr ")"        ; [0..n)
//             | "dist" "(" expr "," expr ")" ; n copies of v
//             | "sum" "(" expr ")" | "product" "(" expr ")"
//             | "maxv" "(" expr ")" | "minv" "(" expr ")"
//             | "scan" "(" expr ")"        ; exclusive +-scan
//             | "length" "(" expr ")"
//             | "{" expr ":" NAME "in" expr [ "|" expr ] "}"   ; apply-to-each
//
// Comprehension bodies evaluate elementwise over the bound sequence (the
// classic NESL apply-to-each, flattened).

#include <string>

#include "ros/guest.hpp"
#include "support/result.hpp"

namespace mv::ndp {

// Compile Rill source to a VCODE program.
Result<std::string> compile(const std::string& source);

// Compile and execute; PRINT output goes to guest stdout.
Status compile_and_run(ros::SysIface& sys, const std::string& source);

}  // namespace mv::ndp
