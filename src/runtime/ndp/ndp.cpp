#include "runtime/ndp/ndp.hpp"

#include <cctype>
#include <map>
#include <vector>

#include "runtime/vcode/vcode.hpp"
#include "support/strings.hpp"

namespace mv::ndp {
namespace {

// --- lexer -------------------------------------------------------------------

struct Token {
  enum class Kind {
    kNumber,
    kName,
    kKeyword,  // let print in
    kSymbol,   // + - * / < > == ( ) { } : | , =
    kEof,
  };
  Kind kind = Kind::kEof;
  std::string text;
  int line = 1;
};

Result<std::vector<Token>> lex(const std::string& src) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.line = line;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t start = i;
      while (i < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i])) ||
              src[i] == '.')) {
        ++i;
      }
      tok.kind = Token::Kind::kNumber;
      tok.text = src.substr(start, i - start);
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) ||
              src[i] == '_')) {
        ++i;
      }
      tok.text = src.substr(start, i - start);
      tok.kind = (tok.text == "let" || tok.text == "print" ||
                  tok.text == "in")
                     ? Token::Kind::kKeyword
                     : Token::Kind::kName;
    } else if (c == '=' && i + 1 < src.size() && src[i + 1] == '=') {
      tok.kind = Token::Kind::kSymbol;
      tok.text = "==";
      i += 2;
    } else if (std::string("+-*/<>(){}:|,=").find(c) != std::string::npos) {
      tok.kind = Token::Kind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
    } else {
      return err(Err::kParse,
                 strfmt("line %d: unexpected character '%c'", line, c));
    }
    tokens.push_back(std::move(tok));
  }
  tokens.push_back(Token{Token::Kind::kEof, "", line});
  return tokens;
}

// --- compiler -------------------------------------------------------------------

// Emits VCODE while tracking the virtual stack depth so let-bound names and
// comprehension variables resolve to PICK offsets.
class Compiler {
 public:
  explicit Compiler(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::string> compile() {
    while (!at(Token::Kind::kEof)) {
      MV_RETURN_IF_ERROR(statement());
    }
    // Release let bindings left on the stack.
    for (std::size_t i = 0; i < scopes_.size(); ++i) emit("POP");
    return out_;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  bool at(Token::Kind kind) const { return peek().kind == kind; }
  bool at_symbol(const char* s) const {
    return peek().kind == Token::Kind::kSymbol && peek().text == s;
  }
  bool at_keyword(const char* s) const {
    return peek().kind == Token::Kind::kKeyword && peek().text == s;
  }
  Token take() { return tokens_[pos_++]; }
  Status expect_symbol(const char* s) {
    if (!at_symbol(s)) {
      return err(Err::kParse, strfmt("line %d: expected '%s', got '%s'",
                                     peek().line, s, peek().text.c_str()));
    }
    ++pos_;
    return Status::ok();
  }

  void emit(const std::string& insn) {
    out_ += insn;
    out_ += '\n';
  }

  Status statement() {
    if (at_keyword("let")) {
      ++pos_;
      if (!at(Token::Kind::kName)) {
        return err(Err::kParse,
                   strfmt("line %d: expected a name after let", peek().line));
      }
      const std::string name = take().text;
      MV_RETURN_IF_ERROR(expect_symbol("="));
      MV_RETURN_IF_ERROR(expression());
      // The value stays on the stack; record its slot.
      scopes_.emplace_back(name, depth_ - 1);
      return Status::ok();
    }
    if (at_keyword("print")) {
      ++pos_;
      MV_RETURN_IF_ERROR(expression());
      emit("PRINT");
      --depth_;
      return Status::ok();
    }
    return err(Err::kParse, strfmt("line %d: expected let or print, got '%s'",
                                   peek().line, peek().text.c_str()));
  }

  Status expression() {
    MV_RETURN_IF_ERROR(sum());
    if (at_symbol("<") || at_symbol(">") || at_symbol("==")) {
      const std::string op = take().text;
      MV_RETURN_IF_ERROR(sum());
      emit(op == "<" ? "LT" : op == ">" ? "GT" : "EQ");
      --depth_;
    }
    return Status::ok();
  }

  Status sum() {
    MV_RETURN_IF_ERROR(product());
    while (at_symbol("+") || at_symbol("-")) {
      const std::string op = take().text;
      MV_RETURN_IF_ERROR(product());
      emit(op == "+" ? "ADD" : "SUB");
      --depth_;
    }
    return Status::ok();
  }

  Status product() {
    MV_RETURN_IF_ERROR(atom());
    while (at_symbol("*") || at_symbol("/")) {
      const std::string op = take().text;
      MV_RETURN_IF_ERROR(atom());
      emit(op == "*" ? "MUL" : "DIV");
      --depth_;
    }
    return Status::ok();
  }

  Status unary_builtin(const std::string& name) {
    MV_RETURN_IF_ERROR(expect_symbol("("));
    MV_RETURN_IF_ERROR(expression());
    MV_RETURN_IF_ERROR(expect_symbol(")"));
    if (name == "iota") emit("IOTA");
    else if (name == "sum") emit("REDUCE +");
    else if (name == "product") emit("REDUCE *");
    else if (name == "maxv") emit("REDUCE max");
    else if (name == "minv") emit("REDUCE min");
    else if (name == "scan") emit("SCAN +");
    else emit("LENGTH");  // length
    return Status::ok();
  }

  Status atom() {
    if (at(Token::Kind::kNumber)) {
      emit("CONST " + take().text);
      ++depth_;
      return Status::ok();
    }
    if (at_symbol("(")) {
      ++pos_;
      MV_RETURN_IF_ERROR(expression());
      return expect_symbol(")");
    }
    if (at_symbol("{")) return comprehension();
    if (at(Token::Kind::kName)) {
      const Token tok = take();
      const std::string& name = tok.text;
      if (name == "iota" || name == "sum" || name == "product" ||
          name == "maxv" || name == "minv" || name == "scan" ||
          name == "length") {
        // The argument expression pushes one value; the builtin replaces it,
        // so the net depth change is already accounted for.
        return unary_builtin(name);
      }
      if (name == "dist") {
        MV_RETURN_IF_ERROR(expect_symbol("("));
        MV_RETURN_IF_ERROR(expression());
        MV_RETURN_IF_ERROR(expect_symbol(","));
        MV_RETURN_IF_ERROR(expression());
        MV_RETURN_IF_ERROR(expect_symbol(")"));
        emit("DIST");
        --depth_;
        return Status::ok();
      }
      // Variable reference.
      for (std::size_t i = scopes_.size(); i-- > 0;) {
        if (scopes_[i].first == name) {
          emit(strfmt("PICK %zu", depth_ - 1 - scopes_[i].second));
          ++depth_;
          return Status::ok();
        }
      }
      return err(Err::kParse, strfmt("line %d: unbound variable '%s'",
                                     tok.line, name.c_str()));
    }
    return err(Err::kParse, strfmt("line %d: unexpected '%s'", peek().line,
                                   peek().text.c_str()));
  }

  // { body : x in seq | cond }  — apply-to-each, optional filter.
  Status comprehension() {
    MV_RETURN_IF_ERROR(expect_symbol("{"));
    // Parse the body lazily: we need `seq` on the stack before compiling the
    // body, so remember the token range and re-walk it afterwards.
    const std::size_t body_start = pos_;
    int braces = 0;
    while (!(braces == 0 && at_symbol(":"))) {
      if (at(Token::Kind::kEof)) {
        return err(Err::kParse, "unterminated comprehension");
      }
      if (at_symbol("{")) ++braces;
      if (at_symbol("}")) --braces;
      ++pos_;
    }
    const std::size_t body_end = pos_;
    ++pos_;  // ':'
    if (!at(Token::Kind::kName)) {
      return err(Err::kParse,
                 strfmt("line %d: expected a binder name", peek().line));
    }
    const std::string binder = take().text;
    if (!at_keyword("in")) {
      return err(Err::kParse, strfmt("line %d: expected 'in'", peek().line));
    }
    ++pos_;
    MV_RETURN_IF_ERROR(expression());  // seq on the stack
    scopes_.emplace_back(binder, depth_ - 1);

    // Compile the body with the binder in scope.
    const std::size_t resume = pos_;
    pos_ = body_start;
    MV_RETURN_IF_ERROR(expression());
    if (pos_ != body_end) {
      return err(Err::kParse, strfmt("line %d: malformed comprehension body",
                                     peek().line));
    }
    pos_ = resume;

    // Optional filter.
    if (at_symbol("|")) {
      ++pos_;
      MV_RETURN_IF_ERROR(expression());  // flags on top of body result
      emit("PACK");
      --depth_;
    }
    MV_RETURN_IF_ERROR(expect_symbol("}"));
    // Drop the binder's sequence (beneath the result).
    emit("SWAP");
    emit("POP");
    --depth_;
    scopes_.pop_back();
    return Status::ok();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::string out_;
  std::size_t depth_ = 0;
  std::vector<std::pair<std::string, std::size_t>> scopes_;
};

}  // namespace

Result<std::string> compile(const std::string& source) {
  MV_ASSIGN_OR_RETURN(std::vector<Token> tokens, lex(source));
  Compiler compiler(std::move(tokens));
  return compiler.compile();
}

Status compile_and_run(ros::SysIface& sys, const std::string& source) {
  MV_ASSIGN_OR_RETURN(const std::string program, compile(source));
  vcode::Vm vm(sys);
  return vm.run(program);
}

}  // namespace mv::ndp
