#include "runtime/vcode/vcode.hpp"

#include <algorithm>
#include <cmath>

#include "hw/phys_mem.hpp"
#include "support/strings.hpp"

namespace mv::vcode {

Vm::~Vm() {
  for (Vec& vec : stack_) release(vec);
}

const std::vector<double>& Vm::top() const {
  static const std::vector<double> kEmpty;
  return stack_.empty() ? kEmpty : stack_.back().data;
}

void Vm::charge_elements(std::size_t n) {
  stats_.elements_processed += n;
  sys_->charge_user(static_cast<std::uint64_t>(
      static_cast<double>(n) * config_.element_cycles + 20));
}

Result<Vm::Vec> Vm::make_vec(std::vector<double> data) {
  if (data.size() > config_.max_vector) {
    return err(Err::kLimit, "vector exceeds the VM's size limit");
  }
  Vec vec;
  vec.guest_len = hw::page_ceil(std::max<std::uint64_t>(
      data.size() * sizeof(double), 1));
  // Vector storage is guest memory: allocation (and later release) flows
  // through mmap/munmap just like the real interpreter's vector heap.
  MV_ASSIGN_OR_RETURN(vec.guest_base,
                      sys_->mmap(0, vec.guest_len,
                                 ros::kProtRead | ros::kProtWrite,
                                 ros::kMapPrivate | ros::kMapAnonymous));
  // First-touch the backing so residency and fault behaviour are real.
  for (std::uint64_t off = 0; off < vec.guest_len; off += hw::kPageSize) {
    (void)sys_->mem_touch(vec.guest_base + off, hw::Access::kWrite);
  }
  vec.data = std::move(data);
  ++stats_.vectors_allocated;
  return vec;
}

void Vm::release(Vec& vec) {
  if (vec.guest_base != 0) {
    (void)sys_->munmap(vec.guest_base, vec.guest_len);
    vec.guest_base = 0;
  }
}

Result<Vm::Vec> Vm::pop() {
  if (stack_.empty()) return err(Err::kState, "VCODE stack underflow");
  Vec vec = std::move(stack_.back());
  stack_.pop_back();
  return vec;
}

Status Vm::push(Vec vec) {
  if (stack_.size() >= config_.max_stack) {
    release(vec);
    return err(Err::kLimit, "VCODE stack overflow");
  }
  stack_.push_back(std::move(vec));
  stats_.peak_stack_depth =
      std::max<std::uint64_t>(stats_.peak_stack_depth, stack_.size());
  return Status::ok();
}

Result<double> Vm::pop_scalar() {
  MV_ASSIGN_OR_RETURN(Vec vec, pop());
  if (vec.data.size() != 1) {
    release(vec);
    return err(Err::kInval, "expected a scalar (length-1 vector)");
  }
  const double v = vec.data[0];
  release(vec);
  return v;
}

Status Vm::exec_binary(const std::string& opcode) {
  MV_ASSIGN_OR_RETURN(Vec b, pop());
  auto a_result = pop();
  if (!a_result) {
    release(b);
    return a_result.status();
  }
  Vec a = std::move(*a_result);
  // Broadcast length-1 operands, like VCODE's scalar extension.
  const std::size_t n = std::max(a.data.size(), b.data.size());
  if ((a.data.size() != n && a.data.size() != 1) ||
      (b.data.size() != n && b.data.size() != 1)) {
    release(a);
    release(b);
    return err(Err::kInval, opcode + ": length mismatch");
  }
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = a.data[a.data.size() == 1 ? 0 : i];
    const double y = b.data[b.data.size() == 1 ? 0 : i];
    if (opcode == "ADD") out[i] = x + y;
    else if (opcode == "SUB") out[i] = x - y;
    else if (opcode == "MUL") out[i] = x * y;
    else if (opcode == "DIV") {
      if (y == 0) {
        release(a);
        release(b);
        return err(Err::kInval, "DIV: division by zero");
      }
      out[i] = x / y;
    } else if (opcode == "MIN") out[i] = std::min(x, y);
    else if (opcode == "MAX") out[i] = std::max(x, y);
    else if (opcode == "GT") out[i] = x > y ? 1.0 : 0.0;
    else if (opcode == "LT") out[i] = x < y ? 1.0 : 0.0;
    else out[i] = x == y ? 1.0 : 0.0;  // EQ
  }
  charge_elements(n);
  release(a);
  release(b);
  MV_ASSIGN_OR_RETURN(Vec result, make_vec(std::move(out)));
  return push(std::move(result));
}

Status Vm::exec_reduce(const std::string& op, bool scan) {
  MV_ASSIGN_OR_RETURN(Vec vec, pop());
  const auto apply = [&op](double acc, double x) {
    if (op == "+") return acc + x;
    if (op == "*") return acc * x;
    if (op == "min") return std::min(acc, x);
    return std::max(acc, x);  // "max"
  };
  if (op != "+" && op != "*" && op != "min" && op != "max") {
    release(vec);
    return err(Err::kInval, "unknown reduction operator: " + op);
  }
  const double identity = op == "+"   ? 0.0
                          : op == "*" ? 1.0
                          : op == "min"
                              ? std::numeric_limits<double>::infinity()
                              : -std::numeric_limits<double>::infinity();
  std::vector<double> out;
  if (scan) {
    out.resize(vec.data.size());
    double acc = identity;
    for (std::size_t i = 0; i < vec.data.size(); ++i) {
      out[i] = acc;  // exclusive scan, as VCODE defines
      acc = apply(acc, vec.data[i]);
    }
  } else {
    double acc = identity;
    for (const double x : vec.data) acc = apply(acc, x);
    out.push_back(acc);
  }
  charge_elements(vec.data.size());
  release(vec);
  MV_ASSIGN_OR_RETURN(Vec result, make_vec(std::move(out)));
  return push(std::move(result));
}

Status Vm::exec(const std::string& opcode, const std::string& operand) {
  ++stats_.instructions;
  if (opcode == "CONST") {
    char* end = nullptr;
    const double v = std::strtod(operand.c_str(), &end);
    if (operand.empty() || end != operand.c_str() + operand.size()) {
      return err(Err::kParse, "CONST: bad literal '" + operand + "'");
    }
    MV_ASSIGN_OR_RETURN(Vec vec, make_vec({v}));
    return push(std::move(vec));
  }
  if (opcode == "IOTA") {
    MV_ASSIGN_OR_RETURN(const double n, pop_scalar());
    if (n < 0 || n > static_cast<double>(config_.max_vector)) {
      return err(Err::kInval, "IOTA: bad length");
    }
    std::vector<double> out(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<double>(i);
    }
    charge_elements(out.size());
    MV_ASSIGN_OR_RETURN(Vec vec, make_vec(std::move(out)));
    return push(std::move(vec));
  }
  if (opcode == "DIST") {
    MV_ASSIGN_OR_RETURN(const double n, pop_scalar());
    MV_ASSIGN_OR_RETURN(const double v, pop_scalar());
    if (n < 0 || n > static_cast<double>(config_.max_vector)) {
      return err(Err::kInval, "DIST: bad length");
    }
    std::vector<double> out(static_cast<std::size_t>(n), v);
    charge_elements(out.size());
    MV_ASSIGN_OR_RETURN(Vec vec, make_vec(std::move(out)));
    return push(std::move(vec));
  }
  if (opcode == "ADD" || opcode == "SUB" || opcode == "MUL" ||
      opcode == "DIV" || opcode == "MIN" || opcode == "MAX" ||
      opcode == "GT" || opcode == "LT" || opcode == "EQ") {
    return exec_binary(opcode);
  }
  if (opcode == "PICK") {
    // PICK k: push a copy of the k-th entry from the top (0 = DUP). The NDP
    // compiler uses this to reference let-bound values by stack slot.
    char* end = nullptr;
    const long k = std::strtol(operand.c_str(), &end, 10);
    if (operand.empty() || end != operand.c_str() + operand.size() || k < 0) {
      return err(Err::kParse, "PICK: bad operand '" + operand + "'");
    }
    if (static_cast<std::size_t>(k) >= stack_.size()) {
      return err(Err::kState, "PICK: stack underflow");
    }
    MV_ASSIGN_OR_RETURN(
        Vec copy,
        make_vec(stack_[stack_.size() - 1 - static_cast<std::size_t>(k)].data));
    return push(std::move(copy));
  }
  if (opcode == "REDUCE") return exec_reduce(operand, /*scan=*/false);
  if (opcode == "SCAN") return exec_reduce(operand, /*scan=*/true);
  if (opcode == "PERMUTE") {
    MV_ASSIGN_OR_RETURN(Vec idx, pop());
    auto data_result = pop();
    if (!data_result) {
      release(idx);
      return data_result.status();
    }
    Vec data = std::move(*data_result);
    std::vector<double> out(idx.data.size());
    for (std::size_t i = 0; i < idx.data.size(); ++i) {
      const auto j = static_cast<std::int64_t>(idx.data[i]);
      if (j < 0 || static_cast<std::size_t>(j) >= data.data.size()) {
        release(idx);
        release(data);
        return err(Err::kRange, "PERMUTE: index out of range");
      }
      out[i] = data.data[static_cast<std::size_t>(j)];
    }
    charge_elements(out.size());
    release(idx);
    release(data);
    MV_ASSIGN_OR_RETURN(Vec vec, make_vec(std::move(out)));
    return push(std::move(vec));
  }
  if (opcode == "PACK") {
    MV_ASSIGN_OR_RETURN(Vec flags, pop());
    auto data_result = pop();
    if (!data_result) {
      release(flags);
      return data_result.status();
    }
    Vec data = std::move(*data_result);
    if (flags.data.size() != data.data.size()) {
      release(flags);
      release(data);
      return err(Err::kInval, "PACK: length mismatch");
    }
    std::vector<double> out;
    for (std::size_t i = 0; i < data.data.size(); ++i) {
      if (flags.data[i] != 0) out.push_back(data.data[i]);
    }
    charge_elements(data.data.size());
    release(flags);
    release(data);
    MV_ASSIGN_OR_RETURN(Vec vec, make_vec(std::move(out)));
    return push(std::move(vec));
  }
  if (opcode == "LENGTH") {
    MV_ASSIGN_OR_RETURN(Vec vec, pop());
    const auto n = static_cast<double>(vec.data.size());
    release(vec);
    MV_ASSIGN_OR_RETURN(Vec out, make_vec({n}));
    return push(std::move(out));
  }
  if (opcode == "DUP") {
    if (stack_.empty()) return err(Err::kState, "DUP: stack underflow");
    MV_ASSIGN_OR_RETURN(Vec copy, make_vec(stack_.back().data));
    return push(std::move(copy));
  }
  if (opcode == "POP") {
    MV_ASSIGN_OR_RETURN(Vec vec, pop());
    release(vec);
    return Status::ok();
  }
  if (opcode == "SWAP") {
    if (stack_.size() < 2) return err(Err::kState, "SWAP: stack underflow");
    std::swap(stack_[stack_.size() - 1], stack_[stack_.size() - 2]);
    return Status::ok();
  }
  if (opcode == "PRINT") {
    MV_ASSIGN_OR_RETURN(Vec vec, pop());
    std::string line = "[";
    for (std::size_t i = 0; i < vec.data.size(); ++i) {
      if (i) line += " ";
      line += strfmt("%g", vec.data[i]);
    }
    line += "]\n";
    release(vec);
    return sys_->write_str(1, line).status();
  }
  return err(Err::kParse, "unknown VCODE instruction: " + opcode);
}

Status Vm::run(const std::string& program) {
  int lineno = 0;
  for (const std::string& raw : split(program, '\n')) {
    ++lineno;
    std::string_view line = trim(raw);
    const auto comment = line.find(';');
    if (comment != std::string_view::npos) {
      line = trim(line.substr(0, comment));
    }
    if (line.empty()) continue;
    const auto space = line.find(' ');
    const std::string opcode(line.substr(0, space));
    const std::string operand(
        space == std::string_view::npos
            ? std::string_view{}
            : trim(line.substr(space + 1)));
    const Status s = exec(opcode, operand);
    if (!s.is_ok()) {
      return err(s.code(),
                 strfmt("line %d: %s", lineno, s.detail().c_str()));
    }
  }
  return Status::ok();
}

Result<std::string> run_program(ros::SysIface& sys,
                                const std::string& program) {
  Vm vm(sys);
  MV_RETURN_IF_ERROR(vm.run(program));
  return std::string{};  // PRINT output went to guest stdout
}

}  // namespace mv::vcode
