#pragma once

// A miniature VCODE interpreter. VCODE is the stack-based vector VM that
// NESL compiles to; the paper's authors hand-ported the real one to Nautilus
// as one of their three HRT runtimes ("namely Legion, the NESL VCODE
// interpreter, and the runtime of a home-grown nested data parallel
// language"). This reimplementation interprets a textual instruction stream
// over a stack of flat double vectors (no segment descriptors — documented
// simplification), with vector storage allocated through the guest mmap
// interface so the runtime hybridizes exactly like the Scheme engine does.
//
// Instruction set (one per line, ';' comments):
//   CONST x        push scalar x (a length-1 vector)
//   IOTA           pop scalar n, push [0, 1, ..., n-1]
//   DIST           pop scalar n, pop scalar v, push n copies of v
//   ADD SUB MUL DIV  elementwise (broadcasting length-1 operands)
//   MIN MAX          elementwise
//   REDUCE op      pop vector, push scalar fold (op in + * min max)
//   SCAN op        pop vector, push exclusive prefix scan
//   PERMUTE        pop index vector, pop data, push data[index]
//   PACK           pop flag vector, pop data, push data where flag != 0
//   LENGTH         pop vector, push its length
//   DUP            duplicate the top of stack
//   POP            drop the top of stack
//   SWAP           exchange the two top entries
//   PRINT          pop and print the top vector

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ros/guest.hpp"
#include "support/result.hpp"

namespace mv::vcode {

struct VmStats {
  std::uint64_t instructions = 0;
  std::uint64_t elements_processed = 0;
  std::uint64_t vectors_allocated = 0;
  std::uint64_t peak_stack_depth = 0;
};

class Vm {
 public:
  struct Config {
    // Simulated cycles charged per element of vector work.
    double element_cycles = 2.0;
    std::size_t max_stack = 256;
    std::size_t max_vector = 1 << 22;
  };

  Vm(ros::SysIface& sys, Config config) : sys_(&sys), config_(config) {}
  explicit Vm(ros::SysIface& sys) : Vm(sys, Config{}) {}
  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  // Parse and run a whole program; output accumulates via PRINT.
  Status run(const std::string& program);

  // Stack inspection for tests.
  [[nodiscard]] std::size_t stack_depth() const noexcept {
    return stack_.size();
  }
  [[nodiscard]] const std::vector<double>& top() const;

  [[nodiscard]] const VmStats& stats() const noexcept { return stats_; }

 private:
  // A vector value: payload host-side, backing pages guest-side (mmap'd).
  struct Vec {
    std::uint64_t guest_base = 0;
    std::uint64_t guest_len = 0;  // bytes reserved
    std::vector<double> data;
  };

  Result<Vec> make_vec(std::vector<double> data);
  void release(Vec& vec);
  Result<Vec> pop();
  Status push(Vec vec);
  Result<double> pop_scalar();
  void charge_elements(std::size_t n);

  Status exec(const std::string& opcode, const std::string& operand);
  Status exec_binary(const std::string& opcode);
  Status exec_reduce(const std::string& op, bool scan);

  ros::SysIface* sys_;
  Config config_;
  std::vector<Vec> stack_;
  VmStats stats_;
};

// Run a program and return what PRINT produced (stdout text is written
// through the guest write path; this helper spawns no threads).
Result<std::string> run_program(ros::SysIface& sys, const std::string& program);

}  // namespace mv::vcode
