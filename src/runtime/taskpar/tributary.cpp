#include "runtime/taskpar/tributary.hpp"

#include "support/strings.hpp"

namespace mv::taskpar {

Result<TaskId> TaskGraph::add(TaskFn fn, std::vector<TaskId> deps,
                              std::string name) {
  if (running_) return err(Err::kState, "cannot add tasks while running");
  const TaskId id = tasks_.size();
  Task task;
  task.fn = std::move(fn);
  task.name = name.empty() ? strfmt("task-%zu", id) : std::move(name);
  for (const TaskId dep : deps) {
    if (dep >= id) return err(Err::kInval, "dependency on unknown task");
    if (!tasks_[dep].done) ++task.pending_deps;
    tasks_[dep].dependents.push_back(id);
  }
  task.deps = std::move(deps);
  tasks_.push_back(std::move(task));
  if (tasks_.back().pending_deps == 0) ready_.push_back(id);
  ++remaining_;
  return id;
}

TaskId TaskGraph::claim_ready() {
  while (!ready_.empty()) {
    const TaskId id = ready_.back();
    ready_.pop_back();
    if (!tasks_[id].claimed && !tasks_[id].done) {
      tasks_[id].claimed = true;
      return id;
    }
  }
  return kNone;
}

void TaskGraph::complete(TaskId id) {
  Task& task = tasks_[id];
  task.done = true;
  --remaining_;
  ++executed_;
  order_.push_back(id);
  for (const TaskId dep : task.dependents) {
    if (--tasks_[dep].pending_deps == 0) ready_.push_back(dep);
  }
}

void TaskGraph::worker_loop(ros::SysIface& sys) {
  // Cooperative work loop: claim/complete are atomic between yield points,
  // so no locks are needed under the deterministic scheduler.
  while (remaining_ > 0) {
    const TaskId id = claim_ready();
    if (id == kNone) {
      // Nothing ready: another worker is mid-task. Yield and re-check.
      sys.thread_yield();
      continue;
    }
    tasks_[id].fn(sys);
    complete(id);
  }
}

Status TaskGraph::run(ros::SysIface& sys, unsigned workers) {
  if (running_) return err(Err::kState, "TaskGraph::run is not reentrant");
  // Cycle guard: at least one task must be ready if any remain.
  if (remaining_ > 0 && ready_.empty()) {
    return err(Err::kInval, "task graph has no runnable roots (cycle?)");
  }
  running_ = true;
  std::vector<int> tids;
  for (unsigned w = 1; w < workers; ++w) {
    auto tid = sys.thread_create(
        [this](ros::SysIface& worker_sys) { worker_loop(worker_sys); });
    if (!tid) {
      running_ = false;
      return tid.status();
    }
    tids.push_back(*tid);
  }
  // The calling thread is worker 0.
  worker_loop(sys);
  for (const int tid : tids) {
    MV_RETURN_IF_ERROR(sys.thread_join(tid));
  }
  running_ = false;
  return remaining_ == 0
             ? Status::ok()
             : err(Err::kState, "tasks remained unexecuted (deadlock)");
}

Status parallel_for(
    ros::SysIface& sys, unsigned workers, std::size_t n, std::size_t chunks,
    const std::function<void(ros::SysIface&, std::size_t, std::size_t)>&
        body) {
  if (chunks == 0) return err(Err::kInval, "parallel_for: zero chunks");
  TaskGraph graph;
  const std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per;
    const std::size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    MV_RETURN_IF_ERROR(graph
                           .add([=, &body](ros::SysIface& worker_sys) {
                             body(worker_sys, begin, end);
                           })
                           .status());
  }
  return graph.run(sys, workers);
}

}  // namespace mv::taskpar
