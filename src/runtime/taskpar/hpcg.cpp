#include "runtime/taskpar/hpcg.hpp"

#include <cmath>
#include <vector>

#include "runtime/taskpar/tributary.hpp"

namespace mv::taskpar {

namespace {

// Banded SPD operator: a_ii = 2*band + 1, a_ij = -1 for 0 < |i-j| <= band.
// Diagonally dominant, so CG converges briskly.
void spmv_rows(const std::vector<double>& x, std::vector<double>& y,
               int band, std::size_t begin, std::size_t end) {
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  for (std::size_t i = begin; i < end; ++i) {
    double acc = (2.0 * band + 1.0) * x[i];
    const auto si = static_cast<std::ptrdiff_t>(i);
    for (int d = 1; d <= band; ++d) {
      if (si - d >= 0) acc -= x[i - static_cast<std::size_t>(d)];
      if (si + d < n) acc -= x[i + static_cast<std::size_t>(d)];
    }
    y[i] = acc;
  }
}

}  // namespace

Result<CgResult> run_hpcg_like(ros::SysIface& sys, const CgConfig& config) {
  const std::size_t n = config.n;
  const int band = config.band;
  std::vector<double> x(n, 0.0), r(n), p(n), ap(n);

  // b = A * ones, so the exact solution is all-ones.
  {
    const std::vector<double> ones(n, 1.0);
    spmv_rows(ones, r, band, 0, n);  // r = b - A*0 = b
  }
  p = r;

  CgResult result;
  std::uint64_t tasks = 0;
  const auto flops_per_row = static_cast<std::uint64_t>(4 * band + 6);

  auto dot = [&](const std::vector<double>& a,
                 const std::vector<double>& b) {
    // Deterministic chunked reduction (sequential; cheap next to SpMV).
    double acc = 0;
    for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
    sys.charge_user(static_cast<std::uint64_t>(
        2.0 * static_cast<double>(n) * config.flop_cycles));
    return acc;
  };

  double rr = dot(r, r);
  result.initial_residual = std::sqrt(rr);

  for (int it = 0; it < config.iterations; ++it) {
    // Wave 1: parallel SpMV ap = A p.
    MV_RETURN_IF_ERROR(parallel_for(
        sys, config.workers, n, config.chunks,
        [&](ros::SysIface& worker, std::size_t begin, std::size_t end) {
          spmv_rows(p, ap, band, begin, end);
          worker.charge_user(static_cast<std::uint64_t>(
              static_cast<double>((end - begin) * flops_per_row) *
              config.flop_cycles));
        }));
    tasks += config.chunks;
    ++result.waves;

    const double pap = dot(p, ap);
    const double alpha = rr / pap;

    // Wave 2: parallel x += alpha p; r -= alpha ap.
    MV_RETURN_IF_ERROR(parallel_for(
        sys, config.workers, n, config.chunks,
        [&](ros::SysIface& worker, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
          }
          worker.charge_user(static_cast<std::uint64_t>(
              4.0 * static_cast<double>(end - begin) * config.flop_cycles));
        }));
    tasks += config.chunks;
    ++result.waves;

    const double rr_new = dot(r, r);
    const double beta = rr_new / rr;
    rr = rr_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    sys.charge_user(static_cast<std::uint64_t>(
        2.0 * static_cast<double>(n) * config.flop_cycles));
  }

  result.final_residual = std::sqrt(rr);
  result.tasks_run = tasks;
  return result;
}

}  // namespace mv::taskpar
