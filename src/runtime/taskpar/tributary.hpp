#pragma once

// Tributary: a miniature Legion-style task-parallel runtime, built as the
// paper's stated future work ("We plan to extend Multiverse to work with a
// wider range of real-world runtime systems, especially parallel runtime
// systems like Legion"). Tasks declare dependencies; a worker pool executes
// them. All threading goes through ros::SysIface's pthread-shaped layer, so
// the same runtime runs:
//   - natively, with Linux threads (clone / futex-join), or
//   - hybridized, where Multiverse's default overrides turn every worker
//     into a nested AeroKernel thread — the configuration where the HRT
//     model's cheap primitives pay off (Sec 2's HPCG result).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ros/guest.hpp"
#include "support/result.hpp"

namespace mv::taskpar {

using TaskFn = std::function<void(ros::SysIface&)>;
using TaskId = std::size_t;

class TaskGraph {
 public:
  // Add a task depending on `deps` (which must already exist).
  Result<TaskId> add(TaskFn fn, std::vector<TaskId> deps = {},
                     std::string name = {});

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }

  // Execute the whole graph on `workers` threads created through `sys`.
  // Returns once every task has run. The cooperative scheduler makes
  // execution deterministic for a fixed graph and worker count.
  Status run(ros::SysIface& sys, unsigned workers);

  // Telemetry.
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
    return executed_;
  }
  [[nodiscard]] const std::vector<TaskId>& execution_order() const noexcept {
    return order_;
  }

 private:
  struct Task {
    TaskFn fn;
    std::string name;
    std::vector<TaskId> deps;
    std::vector<TaskId> dependents;
    std::size_t pending_deps = 0;
    bool done = false;
    bool claimed = false;
  };

  // Pop a ready task, or kNone when none is currently ready.
  static constexpr TaskId kNone = static_cast<TaskId>(-1);
  TaskId claim_ready();
  void complete(TaskId id);
  void worker_loop(ros::SysIface& sys);

  std::vector<Task> tasks_;
  std::vector<TaskId> ready_;
  std::size_t remaining_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<TaskId> order_;
  bool running_ = false;
};

// Convenience: run `body(sys, begin, end)` over [0, n) as `chunks` parallel
// tasks on `workers` threads. The SysIface handed to the body is the
// executing worker's own (so compute charging lands on the right core).
Status parallel_for(
    ros::SysIface& sys, unsigned workers, std::size_t n, std::size_t chunks,
    const std::function<void(ros::SysIface&, std::size_t begin,
                             std::size_t end)>& body);

}  // namespace mv::taskpar
