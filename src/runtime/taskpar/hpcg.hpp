#pragma once

// An HPCG-like workload for Tributary: conjugate gradients on a banded
// symmetric positive-definite matrix, with the SpMV and vector updates run
// as parallel task waves. This is the benchmark family behind the paper's
// Section 2 result ("up to 20% [speedup] for the Intel Xeon Phi, and up to
// 40% for a 4-socket ... machine" for HPCG on a hand-ported HRT runtime):
// a task-spawn-heavy parallel runtime whose overheads shrink when its
// threading primitives become AeroKernel primitives.

#include <cstdint>

#include "ros/guest.hpp"
#include "support/result.hpp"

namespace mv::taskpar {

struct CgConfig {
  std::size_t n = 2048;       // unknowns
  int band = 4;               // semi-bandwidth of A
  int iterations = 24;        // CG iterations
  unsigned workers = 4;       // worker threads (incl. the caller)
  std::size_t chunks = 24;    // tasks per wave
  double flop_cycles = 1.0;   // simulated cycles charged per flop
};

struct CgResult {
  double initial_residual = 0;
  double final_residual = 0;
  std::uint64_t tasks_run = 0;
  std::uint64_t waves = 0;
};

// Solve A x = b (b = A * ones) from x0 = 0; returns residual norms so tests
// can check convergence and cross-mode equality.
Result<CgResult> run_hpcg_like(ros::SysIface& sys, const CgConfig& config);

}  // namespace mv::taskpar
