#include "runtime/scheme/engine.hpp"
#include "support/strings.hpp"

// The Vessel evaluator: environment-passing interpreter with proper tail
// calls (the TCO loop below), matching the tail-call-elimination behaviour
// the paper lists among Racket's challenging features.

namespace mv::scheme {

namespace {

bool list_get(Value list, std::size_t index, Value* out) {
  Value cur = list;
  for (std::size_t i = 0; i < index; ++i) {
    if (!cur.is_pair()) return false;
    cur = cur.cell->cdr;
  }
  if (!cur.is_pair()) return false;
  *out = cur.cell->car;
  return true;
}

std::size_t list_length(Value list) {
  std::size_t n = 0;
  for (Value cur = list; cur.is_pair(); cur = cur.cell->cdr) ++n;
  return n;
}

}  // namespace

// Quasiquote templates: unquotes evaluate at depth 1; nested quasiquotes
// raise the depth (no unquote-splicing — the dialect does not need it).
Result<Value> Engine::eval_quasiquote(Value tmpl, Cell* env, int depth) {
  if (!tmpl.is_pair()) return tmpl;
  const Value head = tmpl.cell->car;
  const Value tail = tmpl.cell->cdr;

  if (head.is_sym() && head.sym == s_unquote_ && tail.is_pair()) {
    if (depth == 1) return eval(tail.cell->car, env);
    RootScope scope(heap_);
    scope.add(tmpl);
    MV_ASSIGN_OR_RETURN(const Value inner,
                        eval_quasiquote(tail.cell->car, env, depth - 1));
    scope.add(inner);
    MV_ASSIGN_OR_RETURN(const Value rebuilt, cons(inner, Value::nil()));
    scope.add(rebuilt);
    return cons(head, rebuilt);
  }
  if (head.is_sym() && head.sym == s_quasiquote_ && tail.is_pair()) {
    RootScope scope(heap_);
    scope.add(tmpl);
    MV_ASSIGN_OR_RETURN(const Value inner,
                        eval_quasiquote(tail.cell->car, env, depth + 1));
    scope.add(inner);
    MV_ASSIGN_OR_RETURN(const Value rebuilt, cons(inner, Value::nil()));
    scope.add(rebuilt);
    return cons(head, rebuilt);
  }

  RootScope scope(heap_);
  scope.add(tmpl);
  MV_ASSIGN_OR_RETURN(const Value new_car, eval_quasiquote(head, env, depth));
  scope.add(new_car);
  MV_ASSIGN_OR_RETURN(const Value new_cdr, eval_quasiquote(tail, env, depth));
  scope.add(new_cdr);
  return cons(new_car, new_cdr);
}

Result<Value> Engine::eval_args(Value list, Cell* env,
                                std::vector<Value>* out) {
  RootScope scope(heap_);
  for (Value cur = list; !cur.is_nil(); cur = cur.cell->cdr) {
    if (!cur.is_pair()) return err(Err::kInval, "improper argument list");
    MV_ASSIGN_OR_RETURN(const Value v, eval(cur.cell->car, env));
    scope.add(v);
    out->push_back(v);
  }
  return Value::unspecified();
}

// Binds a closure's parameters to `args` in a fresh environment.
Result<Value> Engine::apply_closure_env(Cell* closure,
                                        std::vector<Value>& args,
                                        Cell** env_out) {
  RootScope scope(heap_);
  scope.add(Value::from_cell(closure));
  for (const Value& a : args) scope.add(a);
  MV_ASSIGN_OR_RETURN(Cell* const frame, make_env(closure->closure_env));
  scope.add(Value::from_cell(frame));
  const std::size_t fixed = closure->params.size();
  if (args.size() < fixed || (!closure->has_rest && args.size() > fixed)) {
    return err(Err::kInval,
               strfmt("%s: expected %zu argument(s), got %zu",
                      closure->proc_name.empty() ? "procedure"
                                                 : closure->proc_name.c_str(),
                      fixed, args.size()));
  }
  frame->bindings.reserve(fixed + (closure->has_rest ? 1 : 0));
  for (std::size_t i = 0; i < fixed; ++i) {
    frame->bindings.emplace_back(closure->params[i], args[i]);
  }
  if (closure->has_rest) {
    Value rest = Value::nil();
    for (std::size_t i = args.size(); i-- > fixed;) {
      scope.add(rest);
      MV_ASSIGN_OR_RETURN(rest, cons(args[i], rest));
    }
    frame->bindings.emplace_back(closure->rest_param, rest);
  }
  *env_out = frame;
  return Value::unspecified();
}

// Evaluates all but the last body form; hands the last back for the caller's
// TCO loop.
Result<Value> Engine::eval_body_tail(Value body, Cell* env, Value* tail_expr,
                                     Cell** tail_env) {
  if (!body.is_pair()) {
    *tail_expr = Value::unspecified();
    *tail_env = env;
    return Value::unspecified();
  }
  while (body.cell->cdr.is_pair()) {
    MV_RETURN_IF_ERROR(eval(body.cell->car, env).status());
    body = body.cell->cdr;
  }
  *tail_expr = body.cell->car;
  *tail_env = env;
  return Value::unspecified();
}

Result<Value> Engine::eval(Value expr, Cell* env) {
  for (;;) {
    RootScope scope(heap_);
    scope.add(expr);
    if (env != nullptr) scope.add(Value::from_cell(env));
    count_step();

    if (expr.is_sym()) return env_lookup(env, expr.sym);
    if (!expr.is_pair()) return expr;  // literals self-evaluate

    const Value op = expr.cell->car;
    const Value rest = expr.cell->cdr;

    if (op.is_sym()) {
      const SymId s = op.sym;

      if (s == s_quote_) {
        Value quoted;
        if (!list_get(rest, 0, &quoted)) return err(Err::kInval, "quote");
        return quoted;
      }

      if (s == s_quasiquote_) {
        Value tmpl;
        if (!list_get(rest, 0, &tmpl)) return err(Err::kInval, "quasiquote");
        return eval_quasiquote(tmpl, env, 1);
      }
      if (s == s_unquote_) {
        return err(Err::kInval, "unquote outside quasiquote");
      }

      if (s == s_if_) {
        Value test, conseq;
        if (!list_get(rest, 0, &test) || !list_get(rest, 1, &conseq)) {
          return err(Err::kInval, "if: malformed");
        }
        MV_ASSIGN_OR_RETURN(const Value t, eval(test, env));
        if (t.truthy()) {
          expr = conseq;
        } else {
          Value alt;
          if (!list_get(rest, 2, &alt)) return Value::unspecified();
          expr = alt;
        }
        continue;  // tail
      }

      if (s == s_define_) {
        Value target;
        if (!list_get(rest, 0, &target)) return err(Err::kInval, "define");
        if (target.is_sym()) {
          Value init;
          if (!list_get(rest, 1, &init)) return err(Err::kInval, "define");
          MV_ASSIGN_OR_RETURN(Value v, eval(init, env));
          // Name anonymous lambdas after their binding.
          if (v.is_cell() && v.cell->type == Cell::Type::kClosure &&
              v.cell->proc_name.empty()) {
            v.cell->proc_name = sym_name(target.sym);
          }
          MV_RETURN_IF_ERROR(env_define(env, target.sym, v));
          return Value::unspecified();
        }
        if (target.is_pair()) {
          // (define (name params...) body...)
          const Value name = target.cell->car;
          if (!name.is_sym()) return err(Err::kInval, "define: bad name");
          MV_ASSIGN_OR_RETURN(Cell* const fn,
                              heap_.alloc(Cell::Type::kClosure));
          scope.add(Value::from_cell(fn));
          fn->proc_name = sym_name(name.sym);
          Value params = target.cell->cdr;
          while (params.is_pair()) {
            if (!params.cell->car.is_sym()) {
              return err(Err::kInval, "define: bad parameter");
            }
            fn->params.push_back(params.cell->car.sym);
            params = params.cell->cdr;
          }
          if (params.is_sym()) {
            fn->has_rest = true;
            fn->rest_param = params.sym;
          }
          fn->body = rest.cell->cdr;
          fn->closure_env = env;
          MV_RETURN_IF_ERROR(env_define(env, name.sym,
                                        Value::from_cell(fn)));
          return Value::unspecified();
        }
        return err(Err::kInval, "define: bad target");
      }

      if (s == s_set_) {
        Value name, init;
        if (!list_get(rest, 0, &name) || !list_get(rest, 1, &init) ||
            !name.is_sym()) {
          return err(Err::kInval, "set!: malformed");
        }
        MV_ASSIGN_OR_RETURN(const Value v, eval(init, env));
        MV_RETURN_IF_ERROR(env_set(env, name.sym, v));
        return Value::unspecified();
      }

      if (s == s_lambda_) {
        MV_ASSIGN_OR_RETURN(Cell* const fn, heap_.alloc(Cell::Type::kClosure));
        Value params;
        if (!list_get(rest, 0, &params)) return err(Err::kInval, "lambda");
        if (params.is_sym()) {
          fn->has_rest = true;
          fn->rest_param = params.sym;
        } else {
          while (params.is_pair()) {
            if (!params.cell->car.is_sym()) {
              return err(Err::kInval, "lambda: bad parameter");
            }
            fn->params.push_back(params.cell->car.sym);
            params = params.cell->cdr;
          }
          if (params.is_sym()) {
            fn->has_rest = true;
            fn->rest_param = params.sym;
          }
        }
        fn->body = rest.cell->cdr;
        fn->closure_env = env;
        return Value::from_cell(fn);
      }

      if (s == s_begin_) {
        Value tail;
        Cell* tenv;
        MV_RETURN_IF_ERROR(eval_body_tail(rest, env, &tail, &tenv).status());
        expr = tail;
        env = tenv;
        continue;
      }

      if (s == s_let_ || s == s_letrec_ || s == s_let_star_) {
        Value first;
        if (!list_get(rest, 0, &first)) return err(Err::kInval, "let");
        if (s == s_let_ && first.is_sym()) {
          // Named let: (let loop ((v init)...) body...)
          Value bindings;
          if (!list_get(rest, 1, &bindings)) return err(Err::kInval, "let");
          MV_ASSIGN_OR_RETURN(Cell* const loop_env, make_env(env));
          scope.add(Value::from_cell(loop_env));
          MV_ASSIGN_OR_RETURN(Cell* const fn,
                              heap_.alloc(Cell::Type::kClosure));
          scope.add(Value::from_cell(fn));
          fn->proc_name = sym_name(first.sym);
          fn->body = rest.cell->cdr.cell->cdr;
          fn->closure_env = loop_env;
          std::vector<Value> inits;
          for (Value b = bindings; b.is_pair(); b = b.cell->cdr) {
            Value name, init;
            if (!list_get(b.cell->car, 0, &name) || !name.is_sym()) {
              return err(Err::kInval, "named let: bad binding");
            }
            fn->params.push_back(name.sym);
            if (!list_get(b.cell->car, 1, &init)) init = Value::unspecified();
            MV_ASSIGN_OR_RETURN(const Value v, eval(init, env));
            scope.add(v);
            inits.push_back(v);
          }
          loop_env->bindings.emplace_back(first.sym, Value::from_cell(fn));
          Cell* call_env = nullptr;
          MV_RETURN_IF_ERROR(
              apply_closure_env(fn, inits, &call_env).status());
          scope.add(Value::from_cell(call_env));
          Value tail;
          Cell* tenv;
          MV_RETURN_IF_ERROR(
              eval_body_tail(fn->body, call_env, &tail, &tenv).status());
          expr = tail;
          env = tenv;
          continue;
        }
        // Plain let / let* / letrec.
        MV_ASSIGN_OR_RETURN(Cell* const frame, make_env(env));
        scope.add(Value::from_cell(frame));
        if (s == s_letrec_) {
          for (Value b = first; b.is_pair(); b = b.cell->cdr) {
            Value name;
            if (!list_get(b.cell->car, 0, &name) || !name.is_sym()) {
              return err(Err::kInval, "letrec: bad binding");
            }
            frame->bindings.emplace_back(name.sym, Value::unspecified());
          }
        }
        for (Value b = first; b.is_pair(); b = b.cell->cdr) {
          Value name, init;
          if (!list_get(b.cell->car, 0, &name) || !name.is_sym()) {
            return err(Err::kInval, "let: bad binding");
          }
          if (!list_get(b.cell->car, 1, &init)) init = Value::unspecified();
          // let evaluates inits in the outer env; let*/letrec in the frame.
          Cell* init_env = s == s_let_ ? env : frame;
          MV_ASSIGN_OR_RETURN(const Value v, eval(init, init_env));
          scope.add(v);
          if (s == s_letrec_) {
            MV_RETURN_IF_ERROR(env_set(frame, name.sym, v));
          } else {
            MV_RETURN_IF_ERROR(env_define(frame, name.sym, v));
          }
        }
        Value tail;
        Cell* tenv;
        MV_RETURN_IF_ERROR(
            eval_body_tail(rest.cell->cdr, frame, &tail, &tenv).status());
        expr = tail;
        env = tenv;
        continue;
      }

      if (s == s_cond_) {
        bool matched = false;
        for (Value clause = rest; clause.is_pair();
             clause = clause.cell->cdr) {
          Value head;
          if (!list_get(clause.cell->car, 0, &head)) {
            return err(Err::kInval, "cond: bad clause");
          }
          Value test_result;
          if (head.is_sym() && head.sym == s_else_) {
            test_result = Value::boolean(true);
          } else {
            MV_ASSIGN_OR_RETURN(test_result, eval(head, env));
          }
          if (!test_result.truthy()) continue;
          const Value body = clause.cell->car.cell->cdr;
          if (!body.is_pair()) return test_result;  // (cond (x)) yields x
          Value tail;
          Cell* tenv;
          MV_RETURN_IF_ERROR(
              eval_body_tail(body, env, &tail, &tenv).status());
          expr = tail;
          env = tenv;
          matched = true;
          break;
        }
        if (matched) continue;
        return Value::unspecified();
      }

      if (s == s_case_) {
        Value key_expr;
        if (!list_get(rest, 0, &key_expr)) return err(Err::kInval, "case");
        MV_ASSIGN_OR_RETURN(const Value key, eval(key_expr, env));
        scope.add(key);
        for (Value clause = rest.cell->cdr; clause.is_pair();
             clause = clause.cell->cdr) {
          Value data;
          if (!list_get(clause.cell->car, 0, &data)) {
            return err(Err::kInval, "case: bad clause");
          }
          bool hit = data.is_sym() && data.sym == s_else_;
          for (Value d = data; !hit && d.is_pair(); d = d.cell->cdr) {
            hit = value_eqv(key, d.cell->car);
          }
          if (!hit) continue;
          Value tail;
          Cell* tenv;
          MV_RETURN_IF_ERROR(eval_body_tail(clause.cell->car.cell->cdr, env,
                                            &tail, &tenv)
                                 .status());
          expr = tail;
          env = tenv;
          hit = true;
          goto tail_continue;
        }
        return Value::unspecified();
      tail_continue:
        continue;
      }

      if (s == s_and_) {
        if (!rest.is_pair()) return Value::boolean(true);
        Value cur = rest;
        while (cur.cell->cdr.is_pair()) {
          MV_ASSIGN_OR_RETURN(const Value v, eval(cur.cell->car, env));
          if (!v.truthy()) return v;
          cur = cur.cell->cdr;
        }
        expr = cur.cell->car;
        continue;
      }

      if (s == s_or_) {
        if (!rest.is_pair()) return Value::boolean(false);
        Value cur = rest;
        while (cur.cell->cdr.is_pair()) {
          MV_ASSIGN_OR_RETURN(const Value v, eval(cur.cell->car, env));
          if (v.truthy()) return v;
          cur = cur.cell->cdr;
        }
        expr = cur.cell->car;
        continue;
      }

      if (s == s_when_ || s == s_unless_) {
        Value test;
        if (!list_get(rest, 0, &test)) return err(Err::kInval, "when/unless");
        MV_ASSIGN_OR_RETURN(const Value t, eval(test, env));
        const bool go = s == s_when_ ? t.truthy() : !t.truthy();
        if (!go) return Value::unspecified();
        Value tail;
        Cell* tenv;
        MV_RETURN_IF_ERROR(
            eval_body_tail(rest.cell->cdr, env, &tail, &tenv).status());
        expr = tail;
        env = tenv;
        continue;
      }

      if (s == s_do_) {
        // (do ((var init step)...) (test result...) body...)
        Value bindings, exit_clause;
        if (!list_get(rest, 0, &bindings) || !list_get(rest, 1, &exit_clause)) {
          return err(Err::kInval, "do: malformed");
        }
        MV_ASSIGN_OR_RETURN(Cell* const frame, make_env(env));
        scope.add(Value::from_cell(frame));
        struct Stepper {
          SymId var;
          Value step;
          bool has_step;
        };
        std::vector<Stepper> steppers;
        for (Value b = bindings; b.is_pair(); b = b.cell->cdr) {
          Value name, init, step;
          if (!list_get(b.cell->car, 0, &name) || !name.is_sym()) {
            return err(Err::kInval, "do: bad binding");
          }
          if (!list_get(b.cell->car, 1, &init)) init = Value::unspecified();
          const bool has_step = list_get(b.cell->car, 2, &step);
          MV_ASSIGN_OR_RETURN(const Value v, eval(init, env));
          frame->bindings.emplace_back(name.sym, v);
          steppers.push_back(Stepper{name.sym, step, has_step});
        }
        Value test;
        if (!list_get(exit_clause, 0, &test)) {
          return err(Err::kInval, "do: bad exit clause");
        }
        const Value body = rest.cell->cdr.cell->cdr;
        for (;;) {
          count_step();
          MV_ASSIGN_OR_RETURN(const Value t, eval(test, frame));
          if (t.truthy()) {
            const Value results = exit_clause.cell->cdr;
            if (!results.is_pair()) return Value::unspecified();
            Value tail;
            Cell* tenv;
            MV_RETURN_IF_ERROR(
                eval_body_tail(results, frame, &tail, &tenv).status());
            expr = tail;
            env = tenv;
            break;
          }
          for (Value b = body; b.is_pair(); b = b.cell->cdr) {
            MV_RETURN_IF_ERROR(eval(b.cell->car, frame).status());
          }
          // Evaluate all steps, then assign (simultaneous update).
          std::vector<Value> new_values;
          RootScope step_scope(heap_);
          for (const Stepper& st : steppers) {
            if (!st.has_step) {
              new_values.push_back(Value::unspecified());
              continue;
            }
            MV_ASSIGN_OR_RETURN(const Value v, eval(st.step, frame));
            step_scope.add(v);
            new_values.push_back(v);
          }
          for (std::size_t i = 0; i < steppers.size(); ++i) {
            if (steppers[i].has_step) {
              MV_RETURN_IF_ERROR(env_set(frame, steppers[i].var,
                                         new_values[i]));
            }
          }
        }
        continue;
      }
    }

    // --- application -------------------------------------------------------
    MV_ASSIGN_OR_RETURN(const Value fn, eval(op, env));
    scope.add(fn);
    std::vector<Value> args;
    args.reserve(list_length(rest));
    MV_RETURN_IF_ERROR(eval_args(rest, env, &args).status());
    for (const Value& a : args) scope.add(a);

    if (!fn.is_callable()) {
      return err(Err::kInval, "application of non-procedure: " +
                                  to_display(fn) + " in " + to_display(expr));
    }
    if (fn.cell->type == Cell::Type::kBuiltin) {
      return fn.cell->builtin(*this, args);
    }
    // Closure: tail-call into its body.
    Cell* call_env = nullptr;
    MV_RETURN_IF_ERROR(apply_closure_env(fn.cell, args, &call_env).status());
    scope.add(Value::from_cell(call_env));
    Value tail;
    Cell* tenv;
    MV_RETURN_IF_ERROR(
        eval_body_tail(fn.cell->body, call_env, &tail, &tenv).status());
    expr = tail;
    env = tenv;
  }
}

}  // namespace mv::scheme
