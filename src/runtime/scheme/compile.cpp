#include "runtime/scheme/compile.hpp"

#include <algorithm>
#include <unordered_map>

#include "runtime/scheme/engine.hpp"
#include "support/strings.hpp"

// Compiler pass: s-expression -> Proto. Mirrors eval.cpp form by form —
// every special form's evaluation order, environment discipline, and error
// message is reproduced here so the two engines stay byte-identical over
// observable behaviour. Known intentional divergence: malformed special
// forms are rejected at compile time even in code paths the interpreter
// would never reach at runtime (dead branches).

namespace mv::scheme {

namespace {

bool list_get(Value list, std::size_t index, Value* out) {
  Value cur = list;
  for (std::size_t i = 0; i < index; ++i) {
    if (!cur.is_pair()) return false;
    cur = cur.cell->cdr;
  }
  if (!cur.is_pair()) return false;
  *out = cur.cell->car;
  return true;
}

// Tail context. `proto` means the expression's value is the proto's return
// value (a call there may kTailCall). `loop_from` is the smallest index
// into the active-loop stack for which this position is loop-tail: a call
// to loop j may compile to a jump iff j >= loop_from (the operand stack is
// at label height exactly there).
struct Tail {
  bool proto = false;
  int loop_from = 0;
};

struct Binding {
  SymId sym;
  int slot;        // frame slot; unused when loop_idx >= 0
  bool visible;    // toggled off while compiling named-let init exprs
  int loop_idx;    // >= 0: this name is a jump-compiled loop, not a slot
};

struct Scope {
  std::vector<Binding> binds;
};

struct LoopInfo {
  SymId name;
  std::vector<int> arg_slots;
  int label = 0;
  bool active = false;
};

struct FuncCtx {
  int proto_idx;
  std::vector<Scope> scopes;   // innermost last; flattened into one frame
  std::vector<LoopInfo> loops; // jump-compiled named lets, in nesting order
  std::uint32_t next_slot = 0;
  FuncCtx* parent = nullptr;
};

class Compiler {
 public:
  explicit Compiler(Engine& engine)
      : eng_(engine),
        s_quote_(engine.intern("quote")),
        s_if_(engine.intern("if")),
        s_define_(engine.intern("define")),
        s_set_(engine.intern("set!")),
        s_lambda_(engine.intern("lambda")),
        s_begin_(engine.intern("begin")),
        s_let_(engine.intern("let")),
        s_let_star_(engine.intern("let*")),
        s_letrec_(engine.intern("letrec")),
        s_cond_(engine.intern("cond")),
        s_case_(engine.intern("case")),
        s_else_(engine.intern("else")),
        s_and_(engine.intern("and")),
        s_or_(engine.intern("or")),
        s_when_(engine.intern("when")),
        s_unless_(engine.intern("unless")),
        s_do_(engine.intern("do")),
        s_quasiquote_(engine.intern("quasiquote")),
        s_unquote_(engine.intern("unquote")) {}

  Result<int> toplevel(Value form) {
    const int idx = new_proto("<toplevel>");
    FuncCtx ctx;
    ctx.proto_idx = idx;
    ctx.parent = nullptr;
    ctx_ = &ctx;
    // The toplevel context starts with zero scopes: a bare define here is a
    // global define, exactly as eval() against global_env_ behaves.
    Status st = compile(form, Tail{true, 0});
    if (st.is_ok()) emit(Op::kReturn);
    proto().nslots = std::max(proto().nslots, ctx.next_slot);
    ctx_ = nullptr;
    if (!st.is_ok()) return st;
    return idx;
  }

 private:
  Engine& eng_;
  FuncCtx* ctx_ = nullptr;

  const SymId s_quote_, s_if_, s_define_, s_set_, s_lambda_, s_begin_,
      s_let_, s_let_star_, s_letrec_, s_cond_, s_case_, s_else_, s_and_,
      s_or_, s_when_, s_unless_, s_do_, s_quasiquote_, s_unquote_;

  // --- proto / emission helpers -------------------------------------------

  Proto& proto() { return *eng_.protos()[ctx_->proto_idx]; }

  int new_proto(std::string name) {
    eng_.protos().push_back(std::make_unique<Proto>());
    eng_.protos().back()->name = std::move(name);
    return static_cast<int>(eng_.protos().size()) - 1;
  }

  int emit(Op op, std::int32_t a = 0, std::int32_t b = 0) {
    proto().code.push_back(Insn{op, a, b});
    return static_cast<int>(proto().code.size()) - 1;
  }

  int here() { return static_cast<int>(proto().code.size()); }

  void patch(int at, int target) { proto().code[at].a = target; }

  int add_const(Value v) {
    proto().consts.push_back(v);
    return static_cast<int>(proto().consts.size()) - 1;
  }

  void emit_const(Value v) { emit(Op::kConst, add_const(v)); }

  Tail non_tail() const {
    return Tail{false, static_cast<int>(ctx_->loops.size())};
  }

  // --- scope / slot management --------------------------------------------

  int new_slot() {
    const int s = static_cast<int>(ctx_->next_slot++);
    proto().nslots = std::max(proto().nslots, ctx_->next_slot);
    return s;
  }

  // Append-mode bind (lambda params, letrec, do vars): duplicates coexist
  // and the first-bound wins on lookup, matching the interpreter's forward
  // scan over frame bindings.
  int bind_append(Scope& scope, SymId sym) {
    const int slot = new_slot();
    scope.binds.push_back(Binding{sym, slot, true, -1});
    return slot;
  }

  // Define-mode bind (define, let/let* stores): an existing binding in the
  // same contour is overwritten in place, matching env_define.
  int bind_define(Scope& scope, SymId sym) {
    for (Binding& b : scope.binds) {
      if (b.sym == sym && b.loop_idx < 0) return b.slot;
    }
    return bind_append(scope, sym);
  }

  void bind_loop(Scope& scope, SymId sym, int loop_idx) {
    scope.binds.push_back(Binding{sym, -1, true, loop_idx});
  }

  // Resolve a name to (depth, slot) or a loop binding. Scopes are searched
  // innermost-first; within a scope, first match wins (the interpreter's
  // frame scan order). Returns false if the name is free (-> global).
  struct Resolution {
    int depth = 0;
    int slot = 0;
    int loop_idx = -1;  // >= 0: jump-compiled loop in the current ctx
  };
  bool resolve(SymId sym, Resolution* out) {
    int depth = 0;
    for (FuncCtx* c = ctx_; c != nullptr; c = c->parent, ++depth) {
      for (std::size_t si = c->scopes.size(); si-- > 0;) {
        for (const Binding& b : c->scopes[si].binds) {
          if (b.sym != sym || !b.visible) continue;
          if (b.loop_idx >= 0) {
            // Loop bindings never leak into nested protos: any closure in
            // a loop body disqualifies jump compilation up front.
            if (depth != 0) return false;
            out->depth = 0;
            out->slot = -1;
            out->loop_idx = b.loop_idx;
            return true;
          }
          out->depth = depth;
          out->slot = b.slot;
          out->loop_idx = -1;
          return true;
        }
      }
    }
    return false;
  }

  void set_visible(Scope& scope, SymId sym, bool visible) {
    for (Binding& b : scope.binds) {
      if (b.sym == sym) b.visible = visible;
    }
  }

  // --- define pre-scan -----------------------------------------------------
  // Reserves slots for internal defines of a contour body so mutually
  // recursive functions resolve before their define executes. Descends only
  // through forms that do NOT open their own frame in the interpreter.

  void prescan_defines(Value body_list, Scope& scope) {
    for (Value b = body_list; b.is_pair(); b = b.cell->cdr) {
      prescan_form(b.cell->car, scope);
    }
  }

  void prescan_form(Value form, Scope& scope) {
    if (!form.is_pair() || !form.cell->car.is_sym()) return;
    const SymId s = form.cell->car.sym;
    const Value rest = form.cell->cdr;
    if (s == s_define_) {
      Value target;
      if (!list_get(rest, 0, &target)) return;
      if (target.is_sym()) {
        bind_define(scope, target.sym);
      } else if (target.is_pair() && target.cell->car.is_sym()) {
        bind_define(scope, target.cell->car.sym);
      }
      return;
    }
    if (s == s_begin_ || s == s_when_ || s == s_unless_ || s == s_if_ ||
        s == s_and_ || s == s_or_) {
      for (Value b = rest; b.is_pair(); b = b.cell->cdr) {
        prescan_form(b.cell->car, scope);
      }
      return;
    }
    if (s == s_cond_ || s == s_case_) {
      for (Value clause = rest; clause.is_pair(); clause = clause.cell->cdr) {
        for (Value b = clause.cell->car; b.is_pair(); b = b.cell->cdr) {
          prescan_form(b.cell->car, scope);
        }
      }
      return;
    }
    // let/let*/letrec/do/lambda open their own contour: their defines
    // belong to that contour's own pre-scan.
  }

  // Emit kInitSlots for slots the pre-scan freshly reserved (letrec-style
  // unspecified until their define runs).
  void emit_init_reserved(std::uint32_t first, std::uint32_t after) {
    if (after > first) {
      emit(Op::kInitSlots, static_cast<std::int32_t>(first),
           static_cast<std::int32_t>(after - first));
    }
  }

  // --- loop qualification analysis ----------------------------------------

  static bool sym_appears(Value form, SymId name) {
    if (form.is_sym()) return form.sym == name;
    if (!form.is_pair()) return false;
    return sym_appears(form.cell->car, name) ||
           sym_appears(form.cell->cdr, name);
  }

  // Whether evaluating `form` can create a closure that captures the
  // current frame. A nested named let counts only if it itself fails jump
  // qualification (inner-first recursion).
  bool contains_closure(Value form) {
    if (!form.is_pair()) return false;
    const Value head = form.cell->car;
    const Value rest = form.cell->cdr;
    if (head.is_sym()) {
      const SymId s = head.sym;
      if (s == s_quote_) return false;
      if (s == s_lambda_) return true;
      if (s == s_define_) {
        Value target;
        if (list_get(rest, 0, &target) && target.is_pair()) return true;
        Value init;
        if (list_get(rest, 1, &init)) return contains_closure(init);
        return false;
      }
      if (s == s_let_) {
        Value first;
        if (list_get(rest, 0, &first) && first.is_sym()) {
          // Named let: a qualifying one compiles to jumps (no closure);
          // only its init expressions can still create closures.
          Value bindings;
          if (!list_get(rest, 1, &bindings)) return true;
          const Value body = rest.cell->cdr.cell->cdr;
          if (!named_let_qualifies(first.sym, bindings, body)) return true;
          for (Value b = bindings; b.is_pair(); b = b.cell->cdr) {
            Value init;
            if (list_get(b.cell->car, 1, &init) && contains_closure(init)) {
              return true;
            }
          }
          return false;
        }
      }
    }
    for (Value cur = form; cur.is_pair(); cur = cur.cell->cdr) {
      if (contains_closure(cur.cell->car)) return true;
    }
    return false;
  }

  // Whether every occurrence of `name` in `form` is the operator of an
  // `arity`-argument call in (loop-)tail position, with no shadowing or
  // mutation of the name anywhere beneath.
  bool refs_ok(Value form, SymId name, bool tail, int arity) {
    if (form.is_sym()) return form.sym != name;  // bare reference escapes
    if (!form.is_pair()) return true;
    const Value head = form.cell->car;
    const Value rest = form.cell->cdr;

    if (head.is_sym()) {
      const SymId s = head.sym;
      if (s == s_quote_) return true;
      if (s == s_quasiquote_ || s == s_unquote_) {
        return !sym_appears(rest, name);  // conservative
      }
      if (s == s_lambda_) {
        // A lambda anywhere disqualifies via contains_closure; the refs
        // check does not need to look inside.
        return true;
      }
      if (s == s_if_) {
        Value test, conseq, alt;
        if (!list_get(rest, 0, &test) || !list_get(rest, 1, &conseq)) {
          return true;  // malformed: compile will error anyway
        }
        if (!refs_ok(test, name, false, arity)) return false;
        if (!refs_ok(conseq, name, tail, arity)) return false;
        if (list_get(rest, 2, &alt)) return refs_ok(alt, name, tail, arity);
        return true;
      }
      if (s == s_define_) {
        Value target;
        if (list_get(rest, 0, &target)) {
          if (target.is_sym() && target.sym == name) return false;
          if (target.is_pair() && target.cell->car.is_sym() &&
              target.cell->car.sym == name) {
            return false;
          }
        }
        Value init;
        if (list_get(rest, 1, &init)) return refs_ok(init, name, false, arity);
        return true;
      }
      if (s == s_set_) {
        Value target, init;
        if (list_get(rest, 0, &target) && target.is_sym() &&
            target.sym == name) {
          return false;
        }
        if (list_get(rest, 1, &init)) return refs_ok(init, name, false, arity);
        return true;
      }
      if (s == s_begin_) {
        return refs_ok_body(rest, name, tail, arity);
      }
      if (s == s_let_ || s == s_let_star_ || s == s_letrec_) {
        Value first;
        if (!list_get(rest, 0, &first)) return true;
        Value bindings = first;
        Value body = rest.cell->cdr;
        if (s == s_let_ && first.is_sym()) {
          if (first.sym == name) return false;  // shadowed loop name
          if (!list_get(rest, 1, &bindings)) return true;
          body = rest.cell->cdr.cell->cdr;
        }
        for (Value b = bindings; b.is_pair(); b = b.cell->cdr) {
          Value bname, init;
          if (list_get(b.cell->car, 0, &bname) && bname.is_sym() &&
              bname.sym == name) {
            return false;  // shadowing binder
          }
          if (list_get(b.cell->car, 1, &init) &&
              !refs_ok(init, name, false, arity)) {
            return false;
          }
        }
        return refs_ok_body(body, name, tail, arity);
      }
      if (s == s_cond_) {
        for (Value clause = rest; clause.is_pair();
             clause = clause.cell->cdr) {
          if (!clause.cell->car.is_pair()) continue;
          const Value chead = clause.cell->car.cell->car;
          if (!(chead.is_sym() && chead.sym == s_else_) &&
              !refs_ok(chead, name, false, arity)) {
            return false;
          }
          if (!refs_ok_body(clause.cell->car.cell->cdr, name, tail, arity)) {
            return false;
          }
        }
        return true;
      }
      if (s == s_case_) {
        Value key;
        if (list_get(rest, 0, &key) && !refs_ok(key, name, false, arity)) {
          return false;
        }
        for (Value clause = rest.is_pair() ? rest.cell->cdr : Value::nil();
             clause.is_pair(); clause = clause.cell->cdr) {
          if (!clause.cell->car.is_pair()) continue;
          if (!refs_ok_body(clause.cell->car.cell->cdr, name, tail, arity)) {
            return false;
          }
        }
        return true;
      }
      if (s == s_and_ || s == s_or_) {
        if (!rest.is_pair()) return true;
        Value cur = rest;
        while (cur.cell->cdr.is_pair()) {
          if (!refs_ok(cur.cell->car, name, false, arity)) return false;
          cur = cur.cell->cdr;
        }
        return refs_ok(cur.cell->car, name, tail, arity);
      }
      if (s == s_when_ || s == s_unless_) {
        Value test;
        if (list_get(rest, 0, &test) && !refs_ok(test, name, false, arity)) {
          return false;
        }
        return refs_ok_body(rest.is_pair() ? rest.cell->cdr : Value::nil(),
                            name, tail, arity);
      }
      if (s == s_do_) {
        Value bindings, exit_clause;
        if (!list_get(rest, 0, &bindings) ||
            !list_get(rest, 1, &exit_clause)) {
          return true;
        }
        for (Value b = bindings; b.is_pair(); b = b.cell->cdr) {
          Value bname, init, step;
          if (list_get(b.cell->car, 0, &bname) && bname.is_sym() &&
              bname.sym == name) {
            return false;
          }
          if (list_get(b.cell->car, 1, &init) &&
              !refs_ok(init, name, false, arity)) {
            return false;
          }
          if (list_get(b.cell->car, 2, &step) &&
              !refs_ok(step, name, false, arity)) {
            return false;
          }
        }
        Value test;
        if (list_get(exit_clause, 0, &test) &&
            !refs_ok(test, name, false, arity)) {
          return false;
        }
        // Exit results: last is tail; body forms are never tail.
        if (!refs_ok_body(exit_clause.cell->cdr, name, tail, arity)) {
          return false;
        }
        for (Value b = rest.cell->cdr.cell->cdr; b.is_pair();
             b = b.cell->cdr) {
          if (!refs_ok(b.cell->car, name, false, arity)) return false;
        }
        return true;
      }
      if (s == name) {
        // Call with our name in operator position.
        if (!tail) return false;
        int argc = 0;
        for (Value a = rest; a.is_pair(); a = a.cell->cdr) {
          if (!refs_ok(a.cell->car, name, false, arity)) return false;
          ++argc;
        }
        return argc == arity;
      }
    }
    // Generic application (or pair-headed form): nothing is tail.
    if (head.is_sym() && head.sym == name) return false;  // unreachable
    if (!refs_ok(head, name, false, arity)) return false;
    for (Value a = rest; a.is_pair(); a = a.cell->cdr) {
      if (!refs_ok(a.cell->car, name, false, arity)) return false;
    }
    return true;
  }

  bool refs_ok_body(Value body, SymId name, bool tail, int arity) {
    if (!body.is_pair()) return true;
    Value cur = body;
    while (cur.cell->cdr.is_pair()) {
      if (!refs_ok(cur.cell->car, name, false, arity)) return false;
      cur = cur.cell->cdr;
    }
    return refs_ok(cur.cell->car, name, tail, arity);
  }

  bool named_let_qualifies(SymId name, Value bindings, Value body) {
    std::vector<SymId> params;
    for (Value b = bindings; b.is_pair(); b = b.cell->cdr) {
      Value bname;
      if (!list_get(b.cell->car, 0, &bname) || !bname.is_sym()) return false;
      if (bname.sym == name) return false;  // param shadows the loop name
      for (const SymId p : params) {
        if (p == bname.sym) return false;  // duplicate loop params
      }
      params.push_back(bname.sym);
    }
    for (Value b = body; b.is_pair(); b = b.cell->cdr) {
      if (contains_closure(b.cell->car)) return false;
    }
    return refs_ok_body(body, name, true,
                        static_cast<int>(params.size()));
  }

  // --- compilation ---------------------------------------------------------

  Status compile(Value expr, Tail tail) {
    if (expr.is_sym()) return compile_ref(expr.sym);
    if (!expr.is_pair()) {
      emit_const(expr);  // literals self-evaluate (same cell as the source)
      return Status::ok();
    }

    const Value op = expr.cell->car;
    const Value rest = expr.cell->cdr;

    if (op.is_sym()) {
      const SymId s = op.sym;
      if (s == s_quote_) {
        Value quoted;
        if (!list_get(rest, 0, &quoted)) return err(Err::kInval, "quote");
        emit_const(quoted);
        return Status::ok();
      }
      if (s == s_quasiquote_) {
        Value tmpl;
        if (!list_get(rest, 0, &tmpl)) return err(Err::kInval, "quasiquote");
        return compile_quasiquote(tmpl, 1);
      }
      if (s == s_unquote_) {
        return err(Err::kInval, "unquote outside quasiquote");
      }
      if (s == s_if_) return compile_if(rest, tail);
      if (s == s_define_) return compile_define(rest);
      if (s == s_set_) return compile_set(rest);
      if (s == s_lambda_) {
        Value params;
        if (!list_get(rest, 0, &params)) return err(Err::kInval, "lambda");
        MV_ASSIGN_OR_RETURN(const int pidx,
                            compile_lambda(params, rest.cell->cdr, ""));
        emit(Op::kMakeClosure, pidx);
        proto().frame_escapes = true;
        return Status::ok();
      }
      if (s == s_begin_) return compile_body(rest, tail);
      if (s == s_let_ || s == s_let_star_ || s == s_letrec_) {
        return compile_let(s, expr, rest, tail);
      }
      if (s == s_cond_) return compile_cond(rest, tail);
      if (s == s_case_) return compile_case(rest, tail);
      if (s == s_and_ || s == s_or_) return compile_and_or(s, rest, tail);
      if (s == s_when_ || s == s_unless_) {
        return compile_when_unless(s, rest, tail);
      }
      if (s == s_do_) return compile_do(rest, tail);
    }

    return compile_application(expr, op, rest, tail);
  }

  Status compile_ref(SymId sym) {
    Resolution r;
    if (resolve(sym, &r)) {
      if (r.loop_idx >= 0) {
        // The qualification analysis guarantees this cannot happen; fail
        // loudly rather than emit a wrong program.
        return err(Err::kState,
                   "internal: loop name referenced outside a tail call");
      }
      emit(Op::kLocal, r.depth, r.slot);
      return Status::ok();
    }
    emit(Op::kGlobal, static_cast<std::int32_t>(sym));
    return Status::ok();
  }

  // Body list: all but last form discarded; last in `tail` position. Empty
  // body yields unspecified (eval_body_tail's behaviour).
  Status compile_body(Value body, Tail tail) {
    if (!body.is_pair()) {
      emit_const(Value::unspecified());
      return Status::ok();
    }
    Value cur = body;
    while (cur.cell->cdr.is_pair()) {
      MV_RETURN_IF_ERROR(compile(cur.cell->car, non_tail()));
      emit(Op::kPop);
      cur = cur.cell->cdr;
    }
    return compile(cur.cell->car, tail);
  }

  Status compile_if(Value rest, Tail tail) {
    Value test, conseq, alt;
    if (!list_get(rest, 0, &test) || !list_get(rest, 1, &conseq)) {
      return err(Err::kInval, "if: malformed");
    }
    MV_RETURN_IF_ERROR(compile(test, non_tail()));
    const int jf = emit(Op::kJumpIfFalse);
    MV_RETURN_IF_ERROR(compile(conseq, tail));
    const int jend = emit(Op::kJump);
    patch(jf, here());
    if (list_get(rest, 2, &alt)) {
      MV_RETURN_IF_ERROR(compile(alt, tail));
    } else {
      emit_const(Value::unspecified());
    }
    patch(jend, here());
    return Status::ok();
  }

  Status compile_define(Value rest) {
    Value target;
    if (!list_get(rest, 0, &target)) return err(Err::kInval, "define");
    if (target.is_sym()) {
      Value init;
      if (!list_get(rest, 1, &init)) return err(Err::kInval, "define");
      MV_RETURN_IF_ERROR(compile(init, non_tail()));
      emit(Op::kNameIfAnon, static_cast<std::int32_t>(target.sym));
      MV_RETURN_IF_ERROR(emit_define_store(target.sym));
      emit_const(Value::unspecified());
      return Status::ok();
    }
    if (target.is_pair()) {
      const Value name = target.cell->car;
      if (!name.is_sym()) return err(Err::kInval, "define: bad name");
      MV_ASSIGN_OR_RETURN(
          const int pidx,
          compile_lambda(target.cell->cdr, rest.cell->cdr,
                         eng_.sym_name(name.sym)));
      emit(Op::kMakeClosure, pidx);
      proto().frame_escapes = true;
      MV_RETURN_IF_ERROR(emit_define_store(name.sym));
      emit_const(Value::unspecified());
      return Status::ok();
    }
    return err(Err::kInval, "define: bad target");
  }

  Status emit_define_store(SymId sym) {
    if (ctx_->scopes.empty()) {
      // Toplevel context outside any contour: define into the global table,
      // as env_define(global_env_) does.
      emit(Op::kDefGlobal, static_cast<std::int32_t>(sym));
      return Status::ok();
    }
    const int slot = bind_define(ctx_->scopes.back(), sym);
    emit(Op::kSetLocal, 0, slot);
    return Status::ok();
  }

  Status compile_set(Value rest) {
    Value name, init;
    if (!list_get(rest, 0, &name) || !list_get(rest, 1, &init) ||
        !name.is_sym()) {
      return err(Err::kInval, "set!: malformed");
    }
    MV_RETURN_IF_ERROR(compile(init, non_tail()));
    Resolution r;
    if (resolve(name.sym, &r)) {
      if (r.loop_idx >= 0) {
        return err(Err::kState,
                   "internal: loop name referenced outside a tail call");
      }
      emit(Op::kSetLocal, r.depth, r.slot);
    } else {
      emit(Op::kSetGlobal, static_cast<std::int32_t>(name.sym));
    }
    emit_const(Value::unspecified());
    return Status::ok();
  }

  // params_form: list of symbols, possibly dotted, or a bare rest symbol.
  Result<int> compile_lambda(Value params_form, Value body,
                             const std::string& name) {
    const int pidx = new_proto(name);
    FuncCtx child;
    child.proto_idx = pidx;
    child.parent = ctx_;
    FuncCtx* const saved = ctx_;
    ctx_ = &child;
    auto leave = [&]() { ctx_ = saved; };

    Proto& p = *eng_.protos()[pidx];
    ctx_->scopes.emplace_back();
    Scope& scope = ctx_->scopes.back();
    Value params = params_form;
    if (params.is_sym()) {
      p.has_rest = true;
      bind_append(scope, params.sym);  // rest at slot 0
    } else {
      while (params.is_pair()) {
        if (!params.cell->car.is_sym()) {
          leave();
          return err(Err::kInval, name.empty() ? "lambda: bad parameter"
                                               : "define: bad parameter");
        }
        bind_append(scope, params.cell->car.sym);
        ++p.nparams;
        params = params.cell->cdr;
      }
      if (params.is_sym()) {
        p.has_rest = true;
        bind_append(scope, params.sym);  // rest at slot nparams
      }
    }

    const std::uint32_t before = ctx_->next_slot;
    prescan_defines(body, scope);
    {
      // Re-fetch: nested protos may have reallocated nothing (unique_ptr),
      // but keep the access uniform through proto().
      emit_init_reserved(before, ctx_->next_slot);
    }
    Status st = compile_body(body, Tail{true, 0});
    if (st.is_ok()) emit(Op::kReturn);
    proto().nslots = std::max(proto().nslots, ctx_->next_slot);
    leave();
    if (!st.is_ok()) return st;
    return pidx;
  }

  Status compile_let(SymId s, Value expr, Value rest, Tail tail) {
    Value first;
    if (!list_get(rest, 0, &first)) return err(Err::kInval, "let");
    if (s == s_let_ && first.is_sym()) {
      return compile_named_let(expr, first.sym, rest, tail);
    }
    const Value body = rest.cell->cdr;

    ctx_->scopes.emplace_back();
    Scope& scope = ctx_->scopes.back();
    auto pop_scope = [&]() { ctx_->scopes.pop_back(); };

    if (s == s_let_) {
      // Plain let: inits see the outer scope only; bindings appear all at
      // once afterwards. Slots are pre-assigned with env_define's overwrite
      // semantics so duplicate names collapse to one slot (later wins).
      struct Pending {
        SymId sym;
        int slot;
        Value init;
      };
      std::vector<Pending> pending;
      scope.binds.clear();
      // Hide the scope during init compilation by assigning slots first
      // and binding names only after all stores.
      std::vector<std::pair<SymId, int>> assigned;
      for (Value b = first; b.is_pair(); b = b.cell->cdr) {
        Value name, init;
        if (!list_get(b.cell->car, 0, &name) || !name.is_sym()) {
          pop_scope();
          return err(Err::kInval, "let: bad binding");
        }
        if (!list_get(b.cell->car, 1, &init)) init = Value::unspecified();
        int slot = -1;
        for (const auto& [sym, sl] : assigned) {
          if (sym == name.sym) slot = sl;
        }
        if (slot < 0) slot = new_slot();
        assigned.emplace_back(name.sym, slot);
        pending.push_back(Pending{name.sym, slot, init});
      }
      for (const Pending& pb : pending) {
        Status st = compile(pb.init, non_tail());
        if (!st.is_ok()) {
          pop_scope();
          return st;
        }
        emit(Op::kSetLocal, 0, pb.slot);
      }
      for (const auto& [sym, slot] : assigned) {
        // Later duplicates shadow earlier ones: drop the earlier entry so
        // the first-match scan finds the surviving binding.
        for (Binding& bd : scope.binds) {
          if (bd.sym == sym) bd.visible = false;
        }
        scope.binds.push_back(Binding{sym, slot, true, -1});
      }
    } else if (s == s_let_star_) {
      for (Value b = first; b.is_pair(); b = b.cell->cdr) {
        Value name, init;
        if (!list_get(b.cell->car, 0, &name) || !name.is_sym()) {
          pop_scope();
          return err(Err::kInval, "let: bad binding");
        }
        if (!list_get(b.cell->car, 1, &init)) init = Value::unspecified();
        Status st = compile(init, non_tail());
        if (!st.is_ok()) {
          pop_scope();
          return st;
        }
        const int slot = bind_define(scope, name.sym);
        emit(Op::kSetLocal, 0, slot);
      }
    } else {  // letrec
      const std::uint32_t before = ctx_->next_slot;
      for (Value b = first; b.is_pair(); b = b.cell->cdr) {
        Value name;
        if (!list_get(b.cell->car, 0, &name) || !name.is_sym()) {
          pop_scope();
          return err(Err::kInval, "letrec: bad binding");
        }
        bind_append(scope, name.sym);
      }
      emit_init_reserved(before, ctx_->next_slot);
      for (Value b = first; b.is_pair(); b = b.cell->cdr) {
        Value name, init;
        if (!list_get(b.cell->car, 0, &name) || !name.is_sym()) {
          pop_scope();
          return err(Err::kInval, "let: bad binding");
        }
        if (!list_get(b.cell->car, 1, &init)) init = Value::unspecified();
        Status st = compile(init, non_tail());
        if (!st.is_ok()) {
          pop_scope();
          return st;
        }
        // env_set semantics: the first matching binding receives the value.
        Resolution r;
        resolve(name.sym, &r);
        emit(Op::kSetLocal, r.depth, r.slot);
      }
    }

    const std::uint32_t before_body = ctx_->next_slot;
    prescan_defines(body, scope);
    emit_init_reserved(before_body, ctx_->next_slot);
    Status st = compile_body(body, tail);
    pop_scope();
    return st;
  }

  Status compile_named_let(Value expr, SymId name, Value rest, Tail tail) {
    Value bindings;
    if (!list_get(rest, 1, &bindings)) return err(Err::kInval, "let");
    const Value body = rest.cell->cdr.cell->cdr;

    std::vector<SymId> params;
    std::vector<Value> inits;
    for (Value b = bindings; b.is_pair(); b = b.cell->cdr) {
      Value bname, init;
      if (!list_get(b.cell->car, 0, &bname) || !bname.is_sym()) {
        return err(Err::kInval, "named let: bad binding");
      }
      if (!list_get(b.cell->car, 1, &init)) init = Value::unspecified();
      params.push_back(bname.sym);
      inits.push_back(init);
    }

    if (named_let_qualifies(name, bindings, body)) {
      return compile_loop(name, params, inits, body, tail);
    }

    // Fallback: desugar to a self-referencing closure, giving every
    // iteration a fresh frame exactly as the interpreter does.
    ctx_->scopes.emplace_back();
    Scope& scope = ctx_->scopes.back();
    const int slot = bind_append(scope, name);
    auto fail = [&](Status st) {
      ctx_->scopes.pop_back();
      return st;
    };

    // Rebuild the parameter list for compile_lambda.
    auto lambda = compile_lambda_from_params(params, body,
                                             eng_.sym_name(name));
    if (!lambda) return fail(lambda.status());
    emit(Op::kMakeClosure, *lambda);
    proto().frame_escapes = true;
    emit(Op::kSetLocal, 0, slot);
    emit(Op::kLocal, 0, slot);  // the operator of the initial call
    // Inits evaluate in the outer environment: the loop name must not be
    // visible to them (the interpreter binds it in a separate loop_env).
    set_visible(scope, name, false);
    for (const Value& init : inits) {
      Status st = compile(init, non_tail());
      if (!st.is_ok()) return fail(st);
    }
    set_visible(scope, name, true);
    emit(tail.proto ? Op::kTailCall : Op::kCall,
         static_cast<std::int32_t>(inits.size()), add_const(expr));
    ctx_->scopes.pop_back();
    return Status::ok();
  }

  // compile_lambda over an already-parsed parameter vector (named let).
  Result<int> compile_lambda_from_params(const std::vector<SymId>& params,
                                         Value body,
                                         const std::string& name) {
    const int pidx = new_proto(name);
    FuncCtx child;
    child.proto_idx = pidx;
    child.parent = ctx_;
    FuncCtx* const saved = ctx_;
    ctx_ = &child;

    Proto& p = *eng_.protos()[pidx];
    ctx_->scopes.emplace_back();
    Scope& scope = ctx_->scopes.back();
    for (const SymId sym : params) {
      bind_append(scope, sym);
      ++p.nparams;
    }
    const std::uint32_t before = ctx_->next_slot;
    prescan_defines(body, scope);
    emit_init_reserved(before, ctx_->next_slot);
    Status st = compile_body(body, Tail{true, 0});
    if (st.is_ok()) emit(Op::kReturn);
    proto().nslots = std::max(proto().nslots, ctx_->next_slot);
    ctx_ = saved;
    if (!st.is_ok()) return st;
    return pidx;
  }

  Status compile_loop(SymId name, const std::vector<SymId>& params,
                      const std::vector<Value>& inits, Value body,
                      Tail tail) {
    ctx_->scopes.emplace_back();
    Scope& scope = ctx_->scopes.back();
    auto fail = [&](Status st) {
      ctx_->scopes.pop_back();
      return st;
    };

    // Loop variables get fresh slots; inits evaluate in the outer scope
    // (params are not yet visible) and store as they go — nothing can read
    // the slots until the scope opens below.
    std::vector<int> slots;
    for (std::size_t i = 0; i < params.size(); ++i) {
      const int slot = new_slot();
      slots.push_back(slot);
      Status st = compile(inits[i], non_tail());
      if (!st.is_ok()) return fail(st);
      emit(Op::kSetLocal, 0, slot);
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      scope.binds.push_back(Binding{params[i], slots[i], true, -1});
    }
    const int loop_idx = static_cast<int>(ctx_->loops.size());
    ctx_->loops.push_back(LoopInfo{name, slots, 0, true});
    bind_loop(scope, name, loop_idx);

    ctx_->loops[loop_idx].label = here();
    const std::uint32_t before = ctx_->next_slot;
    prescan_defines(body, scope);
    emit_init_reserved(before, ctx_->next_slot);

    const Tail body_tail{tail.proto, std::min(tail.loop_from, loop_idx)};
    Status st = compile_body(body, body_tail);
    ctx_->loops[loop_idx].active = false;
    ctx_->scopes.pop_back();
    return st;
  }

  Status compile_cond(Value rest, Tail tail) {
    std::vector<int> ends;
    for (Value clause = rest; clause.is_pair(); clause = clause.cell->cdr) {
      Value head;
      if (!list_get(clause.cell->car, 0, &head)) {
        return err(Err::kInval, "cond: bad clause");
      }
      const Value body = clause.cell->car.cell->cdr;
      if (head.is_sym() && head.sym == s_else_) {
        if (!body.is_pair()) {
          emit_const(Value::boolean(true));  // (cond (else)) yields #t
        } else {
          MV_RETURN_IF_ERROR(compile_body(body, tail));
        }
        ends.push_back(emit(Op::kJump));
        continue;  // later clauses are dead code; still syntax-checked
      }
      MV_RETURN_IF_ERROR(compile(head, non_tail()));
      emit(Op::kDup);
      const int jf = emit(Op::kJumpIfFalse);
      if (body.is_pair()) {
        emit(Op::kPop);
        MV_RETURN_IF_ERROR(compile_body(body, tail));
      }
      // else: (cond (x)) yields the test value, already on the stack.
      ends.push_back(emit(Op::kJump));
      patch(jf, here());
      emit(Op::kPop);  // discard the test value on the false path
    }
    emit_const(Value::unspecified());  // no clause matched
    for (const int j : ends) patch(j, here());
    return Status::ok();
  }

  Status compile_case(Value rest, Tail tail) {
    Value key;
    if (!list_get(rest, 0, &key)) return err(Err::kInval, "case");
    MV_RETURN_IF_ERROR(compile(key, non_tail()));
    std::vector<int> ends;
    for (Value clause = rest.cell->cdr; clause.is_pair();
         clause = clause.cell->cdr) {
      Value data;
      if (!list_get(clause.cell->car, 0, &data)) {
        return err(Err::kInval, "case: bad clause");
      }
      const Value body = clause.cell->car.cell->cdr;
      if (data.is_sym() && data.sym == s_else_) {
        emit(Op::kPop);  // the key
        MV_RETURN_IF_ERROR(compile_body(body, tail));
        ends.push_back(emit(Op::kJump));
        continue;
      }
      emit(Op::kCaseMatch, add_const(data));
      const int jf = emit(Op::kJumpIfFalse);
      emit(Op::kPop);  // the key
      MV_RETURN_IF_ERROR(compile_body(body, tail));
      ends.push_back(emit(Op::kJump));
      patch(jf, here());
    }
    emit(Op::kPop);  // no clause matched: discard the key
    emit_const(Value::unspecified());
    for (const int j : ends) patch(j, here());
    return Status::ok();
  }

  Status compile_and_or(SymId s, Value rest, Tail tail) {
    if (!rest.is_pair()) {
      emit_const(Value::boolean(s == s_and_));
      return Status::ok();
    }
    std::vector<int> ends;
    Value cur = rest;
    while (cur.cell->cdr.is_pair()) {
      MV_RETURN_IF_ERROR(compile(cur.cell->car, non_tail()));
      emit(Op::kDup);
      ends.push_back(emit(s == s_and_ ? Op::kJumpIfFalse : Op::kJumpIfTrue));
      emit(Op::kPop);
      cur = cur.cell->cdr;
    }
    MV_RETURN_IF_ERROR(compile(cur.cell->car, tail));
    for (const int j : ends) patch(j, here());
    return Status::ok();
  }

  Status compile_when_unless(SymId s, Value rest, Tail tail) {
    Value test;
    if (!list_get(rest, 0, &test)) return err(Err::kInval, "when/unless");
    MV_RETURN_IF_ERROR(compile(test, non_tail()));
    const int skip =
        emit(s == s_when_ ? Op::kJumpIfFalse : Op::kJumpIfTrue);
    MV_RETURN_IF_ERROR(compile_body(rest.cell->cdr, tail));
    const int jend = emit(Op::kJump);
    patch(skip, here());
    emit_const(Value::unspecified());
    patch(jend, here());
    return Status::ok();
  }

  Status compile_do(Value rest, Tail tail) {
    Value bindings, exit_clause;
    if (!list_get(rest, 0, &bindings) || !list_get(rest, 1, &exit_clause)) {
      return err(Err::kInval, "do: malformed");
    }
    Value test;
    if (!list_get(exit_clause, 0, &test)) {
      return err(Err::kInval, "do: bad exit clause");
    }

    ctx_->scopes.emplace_back();
    Scope& scope = ctx_->scopes.back();
    auto fail = [&](Status st) {
      ctx_->scopes.pop_back();
      return st;
    };

    // do variables mirror the interpreter's emplace_back (duplicates get
    // their own binding; the first wins on lookup and step assignment).
    struct DoVar {
      SymId sym;
      int slot;
      Value step;
      bool has_step;
    };
    std::vector<DoVar> vars;
    for (Value b = bindings; b.is_pair(); b = b.cell->cdr) {
      Value name, init, step;
      if (!list_get(b.cell->car, 0, &name) || !name.is_sym()) {
        return fail(err(Err::kInval, "do: bad binding"));
      }
      if (!list_get(b.cell->car, 1, &init)) init = Value::unspecified();
      const bool has_step = list_get(b.cell->car, 2, &step);
      const int slot = new_slot();
      // Inits evaluate in the outer env (the scope binds names below).
      Status st = compile(init, non_tail());
      if (!st.is_ok()) return fail(st);
      emit(Op::kSetLocal, 0, slot);
      vars.push_back(DoVar{name.sym, slot, step, has_step});
    }
    for (const DoVar& v : vars) {
      scope.binds.push_back(Binding{v.sym, v.slot, true, -1});
    }

    const Value body = rest.cell->cdr.cell->cdr;
    const std::uint32_t before = ctx_->next_slot;
    prescan_defines(body, scope);

    const int ltop = here();
    emit_init_reserved(before, ctx_->next_slot);
    Status st = compile(test, non_tail());
    if (!st.is_ok()) return fail(st);
    const int jexit = emit(Op::kJumpIfTrue);
    for (Value b = body; b.is_pair(); b = b.cell->cdr) {
      st = compile(b.cell->car, non_tail());
      if (!st.is_ok()) return fail(st);
      emit(Op::kPop);
    }
    // Steps: evaluate all, then assign simultaneously (reverse pop order
    // matches positions because each stepped var stores to its own slot).
    std::vector<const DoVar*> stepped;
    for (const DoVar& v : vars) {
      if (!v.has_step) continue;
      st = compile(v.step, non_tail());
      if (!st.is_ok()) return fail(st);
      stepped.push_back(&v);
    }
    for (std::size_t i = stepped.size(); i-- > 0;) {
      // env_set semantics: duplicates assign to the first matching binding.
      Resolution r;
      resolve(stepped[i]->sym, &r);
      emit(Op::kSetLocal, r.depth, r.slot);
    }
    emit(Op::kJump, ltop);
    patch(jexit, here());
    const Value results = exit_clause.cell->cdr;
    if (!results.is_pair()) {
      emit_const(Value::unspecified());
    } else {
      st = compile_body(results, tail);
      if (!st.is_ok()) return fail(st);
    }
    ctx_->scopes.pop_back();
    return Status::ok();
  }

  // Quasiquote templates compile to cons-rebuilding code mirroring
  // eval_quasiquote: the spine is fresh-consed, leaves are shared consts,
  // unquotes at depth 1 compile as ordinary (non-tail) expressions.
  Status compile_quasiquote(Value tmpl, int depth) {
    if (!tmpl.is_pair()) {
      emit_const(tmpl);
      return Status::ok();
    }
    const Value head = tmpl.cell->car;
    const Value tail_v = tmpl.cell->cdr;
    if (head.is_sym() && head.sym == s_unquote_ && tail_v.is_pair()) {
      if (depth == 1) return compile(tail_v.cell->car, non_tail());
      emit_const(head);
      MV_RETURN_IF_ERROR(compile_quasiquote(tail_v.cell->car, depth - 1));
      emit_const(Value::nil());
      emit(Op::kCons);
      emit(Op::kCons);
      return Status::ok();
    }
    if (head.is_sym() && head.sym == s_quasiquote_ && tail_v.is_pair()) {
      emit_const(head);
      MV_RETURN_IF_ERROR(compile_quasiquote(tail_v.cell->car, depth + 1));
      emit_const(Value::nil());
      emit(Op::kCons);
      emit(Op::kCons);
      return Status::ok();
    }
    MV_RETURN_IF_ERROR(compile_quasiquote(head, depth));
    MV_RETURN_IF_ERROR(compile_quasiquote(tail_v, depth));
    emit(Op::kCons);
    return Status::ok();
  }

  Status compile_application(Value expr, Value op, Value rest, Tail tail) {
    // Jump-compiled loop call?
    if (op.is_sym()) {
      Resolution r;
      if (resolve(op.sym, &r) && r.loop_idx >= 0) {
        // Copy out of the loops vector: compiling a nested named let below
        // appends to it and would invalidate a reference.
        const LoopInfo loop = ctx_->loops[static_cast<std::size_t>(r.loop_idx)];
        if (!loop.active || r.loop_idx < tail.loop_from) {
          return err(Err::kState,
                     "internal: loop name referenced outside a tail call");
        }
        int argc = 0;
        for (Value a = rest; a.is_pair(); a = a.cell->cdr) ++argc;
        if (argc != static_cast<int>(loop.arg_slots.size())) {
          return err(Err::kState,
                     "internal: loop name referenced outside a tail call");
        }
        for (Value a = rest; a.is_pair(); a = a.cell->cdr) {
          MV_RETURN_IF_ERROR(compile(a.cell->car, non_tail()));
        }
        // Simultaneous rebinding: all argument values are on the stack, so
        // the reverse-order stores assign each to its distinct slot.
        for (std::size_t i = loop.arg_slots.size(); i-- > 0;) {
          emit(Op::kSetLocal, 0, loop.arg_slots[i]);
        }
        emit(Op::kJump, loop.label);
        // The jump never falls through; enclosing merge points treat this
        // path as dead.
        return Status::ok();
      }
    }
    MV_RETURN_IF_ERROR(compile(op, non_tail()));
    int argc = 0;
    for (Value a = rest; !a.is_nil(); a = a.cell->cdr) {
      if (!a.is_pair()) return err(Err::kInval, "improper argument list");
      MV_RETURN_IF_ERROR(compile(a.cell->car, non_tail()));
      ++argc;
    }
    emit(tail.proto ? Op::kTailCall : Op::kCall, argc, add_const(expr));
    return Status::ok();
  }
};

}  // namespace

Result<int> compile_toplevel(Engine& engine, Value form) {
  Compiler compiler(engine);
  return compiler.toplevel(form);
}

}  // namespace mv::scheme
