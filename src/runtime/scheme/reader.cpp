#include "runtime/scheme/reader.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "runtime/scheme/engine.hpp"
#include "support/strings.hpp"

namespace mv::scheme {

Result<Reader::Token> Reader::next_token(const std::string& src,
                                         std::size_t* pos,
                                         std::size_t* line) {
  const std::size_t n = src.size();
  // Skip whitespace and comments.
  for (;;) {
    while (*pos < n && (std::isspace(static_cast<unsigned char>(src[*pos])))) {
      if (src[*pos] == '\n') ++*line;
      ++*pos;
    }
    if (*pos < n && src[*pos] == ';') {
      while (*pos < n && src[*pos] != '\n') ++*pos;
      continue;
    }
    if (*pos + 1 < n && src[*pos] == '#' && src[*pos + 1] == '|') {
      const std::size_t open_line = *line;
      *pos += 2;
      int depth = 1;
      while (*pos + 1 < n && depth > 0) {
        if (src[*pos] == '|' && src[*pos + 1] == '#') {
          --depth;
          *pos += 2;
        } else if (src[*pos] == '#' && src[*pos + 1] == '|') {
          ++depth;
          *pos += 2;
        } else {
          if (src[*pos] == '\n') ++*line;
          ++*pos;
        }
      }
      if (depth > 0) {
        *pos = n;  // do not rescan the comment tail as an atom
        return err(Err::kParse,
                   strfmt("unterminated block comment opened at line %zu",
                          open_line));
      }
      continue;
    }
    break;
  }
  Token tok;
  tok.line = *line;
  if (*pos >= n) {
    tok.kind = Token::Kind::kEof;
    return tok;
  }
  const char c = src[*pos];
  if (c == '(' || c == '[') {
    ++*pos;
    tok.kind = Token::Kind::kLParen;
    return tok;
  }
  if (c == ')' || c == ']') {
    ++*pos;
    tok.kind = Token::Kind::kRParen;
    return tok;
  }
  if (c == '\'') {
    ++*pos;
    tok.kind = Token::Kind::kQuote;
    return tok;
  }
  if (c == '`') {
    ++*pos;
    tok.kind = Token::Kind::kQuasiquote;
    return tok;
  }
  if (c == ',') {
    ++*pos;
    tok.kind = Token::Kind::kUnquote;
    return tok;
  }
  if (c == '"') {
    ++*pos;
    std::string s;
    while (*pos < n && src[*pos] != '"') {
      char ch = src[*pos];
      if (ch == '\\' && *pos + 1 < n) {
        ++*pos;
        const char esc = src[*pos];
        switch (esc) {
          case 'n': ch = '\n'; break;
          case 't': ch = '\t'; break;
          case 'r': ch = '\r'; break;
          case '\\': ch = '\\'; break;
          case '"': ch = '"'; break;
          default: ch = esc; break;
        }
      }
      s.push_back(ch);
      ++*pos;
    }
    if (*pos >= n) return err(Err::kParse, "unterminated string literal");
    ++*pos;  // closing quote
    tok.kind = Token::Kind::kString;
    tok.text = std::move(s);
    return tok;
  }
  if (c == '#') {
    if (*pos + 1 < n && src[*pos + 1] == '(') {
      *pos += 2;
      tok.kind = Token::Kind::kHashParen;
      return tok;
    }
    if (*pos + 1 < n && src[*pos + 1] == '\\') {
      *pos += 2;
      // Character literal: read the name.
      std::string name;
      while (*pos < n && !std::isspace(static_cast<unsigned char>(src[*pos])) &&
             src[*pos] != '(' && src[*pos] != ')') {
        name.push_back(src[*pos]);
        ++*pos;
        if (name.size() == 1 &&
            !std::isalpha(static_cast<unsigned char>(name[0]))) {
          break;  // punctuation chars are single, e.g. #\(
        }
      }
      tok.kind = Token::Kind::kChar;
      tok.text = std::move(name);
      return tok;
    }
    // #t / #f and other hash atoms fall through as atoms.
  }
  // Atom: read until delimiter.
  std::string text;
  while (*pos < n && !std::isspace(static_cast<unsigned char>(src[*pos])) &&
         src[*pos] != '(' && src[*pos] != ')' && src[*pos] != '[' &&
         src[*pos] != ']' && src[*pos] != ';' && src[*pos] != '"') {
    text.push_back(src[*pos]);
    ++*pos;
  }
  if (text == ".") {
    tok.kind = Token::Kind::kDot;
    return tok;
  }
  tok.kind = Token::Kind::kAtom;
  tok.text = std::move(text);
  return tok;
}

Result<Value> Reader::atom_to_value(const std::string& text) {
  if (text == "#t" || text == "#true") return Value::boolean(true);
  if (text == "#f" || text == "#false") return Value::boolean(false);
  // Number?
  if (!text.empty() &&
      (std::isdigit(static_cast<unsigned char>(text[0])) ||
       ((text[0] == '-' || text[0] == '+' || text[0] == '.') &&
        text.size() > 1 &&
        (std::isdigit(static_cast<unsigned char>(text[1])) ||
         text[1] == '.')))) {
    const bool flonum = text.find('.') != std::string::npos ||
                        text.find('e') != std::string::npos ||
                        text.find('E') != std::string::npos;
    char* end = nullptr;
    if (flonum) {
      const double d = std::strtod(text.c_str(), &end);
      if (end == text.c_str() + text.size()) return Value::real(d);
    } else {
      errno = 0;
      const long long i = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() + text.size()) {
        // strtoll clamps to LLONG_MIN/MAX on overflow; surface the bad
        // literal instead of silently reading a different number.
        if (errno == ERANGE) {
          return err(Err::kParse, "integer literal overflow: " + text);
        }
        return Value::integer(static_cast<std::int64_t>(i));
      }
    }
  }
  return Value::symbol(engine_->intern(text));
}

Result<Value> Reader::parse_list(const std::string& src, std::size_t* pos,
                                 std::size_t* line) {
  // Called after consuming '('. Collect elements; handle dotted tails.
  std::vector<Value> items;
  RootScope scope(engine_->heap());
  Value tail = Value::nil();
  for (;;) {
    const std::size_t save = *pos;
    MV_ASSIGN_OR_RETURN(const Token tok, next_token(src, pos, line));
    if (tok.kind == Token::Kind::kEof) {
      return err(Err::kParse, "unterminated list");
    }
    if (tok.kind == Token::Kind::kRParen) break;
    if (tok.kind == Token::Kind::kDot) {
      if (items.empty()) {
        return err(Err::kParse,
                   strfmt("dotted pair without car at line %zu", tok.line));
      }
      MV_ASSIGN_OR_RETURN(tail, parse(src, pos, line));
      scope.add(tail);
      if (tail.tag == Value::Tag::kEof) {
        return err(Err::kParse, "unexpected end of input after .");
      }
      MV_ASSIGN_OR_RETURN(const Token close, next_token(src, pos, line));
      if (close.kind != Token::Kind::kRParen) {
        return err(Err::kParse, "expected ) after dotted tail");
      }
      break;
    }
    *pos = save;  // reparse the element from scratch
    MV_ASSIGN_OR_RETURN(const Value item, parse(src, pos, line));
    scope.add(item);
    items.push_back(item);
  }
  Value list = tail;
  for (std::size_t i = items.size(); i-- > 0;) {
    scope.add(list);
    MV_ASSIGN_OR_RETURN(list, engine_->cons(items[i], list));
  }
  return list;
}

Result<Value> Reader::parse(const std::string& src, std::size_t* pos,
                            std::size_t* line) {
  // Each nesting level costs one host C++ frame (parse -> parse_list ->
  // parse); cap it so pathological input errors instead of overflowing the
  // host stack.
  constexpr int kMaxDepth = 2048;
  if (depth_ >= kMaxDepth) {
    return err(Err::kParse, "expression nesting too deep");
  }
  ++depth_;
  struct DepthGuard {
    int* d;
    ~DepthGuard() { --*d; }
  } guard{&depth_};
  MV_ASSIGN_OR_RETURN(const Token tok, next_token(src, pos, line));
  switch (tok.kind) {
    case Token::Kind::kEof:
      return Value::eof();
    case Token::Kind::kLParen:
      return parse_list(src, pos, line);
    case Token::Kind::kRParen:
      return err(Err::kParse, strfmt("unexpected ) at line %zu", tok.line));
    case Token::Kind::kDot:
      return err(Err::kParse, strfmt("unexpected . at line %zu", tok.line));
    case Token::Kind::kQuote:
    case Token::Kind::kQuasiquote:
    case Token::Kind::kUnquote: {
      const char* name = tok.kind == Token::Kind::kQuote ? "quote"
                         : tok.kind == Token::Kind::kQuasiquote ? "quasiquote"
                                                                : "unquote";
      MV_ASSIGN_OR_RETURN(const Value inner, parse(src, pos, line));
      if (inner.tag == Value::Tag::kEof) {
        return err(Err::kParse,
                   std::string("unexpected end of input after ") + name);
      }
      RootScope scope(engine_->heap());
      scope.add(inner);
      MV_ASSIGN_OR_RETURN(const Value rest, engine_->cons(inner, Value::nil()));
      scope.add(rest);
      return engine_->cons(Value::symbol(engine_->intern(name)), rest);
    }
    case Token::Kind::kString:
      return engine_->make_string(tok.text);
    case Token::Kind::kChar: {
      if (tok.text == "space") return Value::character(' ');
      if (tok.text == "newline") return Value::character('\n');
      if (tok.text == "tab") return Value::character('\t');
      if (tok.text.size() == 1) return Value::character(tok.text[0]);
      return err(Err::kParse, "bad character literal #\\" + tok.text);
    }
    case Token::Kind::kHashParen: {
      // Vector literal: parse as list then convert.
      MV_ASSIGN_OR_RETURN(Value list, parse_list(src, pos, line));
      RootScope scope(engine_->heap());
      scope.add(list);
      std::vector<Value> items;
      for (Value v = list; v.is_pair(); v = v.cell->cdr) {
        items.push_back(v.cell->car);
      }
      MV_ASSIGN_OR_RETURN(const Value vec,
                          engine_->make_vector(items.size(), Value::nil()));
      for (std::size_t i = 0; i < items.size(); ++i) {
        vec.cell->vec[i] = items[i];
      }
      return vec;
    }
    case Token::Kind::kAtom:
      return atom_to_value(tok.text);
  }
  return err(Err::kParse, "reader: unreachable");
}

Result<Value> Reader::read_one(const std::string& src, std::size_t* pos) {
  std::size_t line = 1;
  return parse(src, pos, &line);
}

Result<std::vector<Value>> Reader::read_all(const std::string& src) {
  std::vector<Value> forms;
  RootScope scope(engine_->heap());
  std::size_t pos = 0;
  std::size_t line = 1;
  for (;;) {
    MV_ASSIGN_OR_RETURN(const Value form, parse(src, &pos, &line));
    if (form.tag == Value::Tag::kEof) break;
    scope.add(form);
    forms.push_back(form);
  }
  return forms;
}

}  // namespace mv::scheme
