#include "runtime/scheme/value.hpp"

namespace mv::scheme {

bool value_eq(const Value& a, const Value& b) {
  if (a.tag != b.tag) return false;
  switch (a.tag) {
    case Value::Tag::kNil:
    case Value::Tag::kUnspecified:
    case Value::Tag::kEof:
      return true;
    case Value::Tag::kBool: return a.b == b.b;
    case Value::Tag::kInt: return a.i == b.i;
    case Value::Tag::kReal: return a.d == b.d;  // eq? on flonums: identity-ish
    case Value::Tag::kChar: return a.c == b.c;
    case Value::Tag::kSym: return a.sym == b.sym;
    case Value::Tag::kCell: return a.cell == b.cell;
  }
  return false;
}

bool value_eqv(const Value& a, const Value& b) {
  // eqv? additionally compares numbers by value across exactness? R7RS says
  // same exactness required; we follow that.
  return value_eq(a, b);
}

bool value_equal(const Value& a, const Value& b) {
  if (value_eqv(a, b)) return true;
  if (!a.is_cell() || !b.is_cell()) return false;
  const Cell* ca = a.cell;
  const Cell* cb = b.cell;
  if (ca->type != cb->type) return false;
  switch (ca->type) {
    case Cell::Type::kPair:
      return value_equal(ca->car, cb->car) && value_equal(ca->cdr, cb->cdr);
    case Cell::Type::kString:
      return ca->str == cb->str;
    case Cell::Type::kVector: {
      if (ca->vec.size() != cb->vec.size()) return false;
      for (std::size_t i = 0; i < ca->vec.size(); ++i) {
        if (!value_equal(ca->vec[i], cb->vec[i])) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace mv::scheme
