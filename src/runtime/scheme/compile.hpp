#pragma once

// The Vessel bytecode compiler: lowers the reader's s-expressions to a
// flat instruction stream with lexical-address variable slots, executed by
// the VM in vm.cpp. The tree-walking evaluator (eval.cpp) stays as the
// reference implementation; byte-identical output between the two engines
// is the correctness invariant (see DESIGN.md §13).
//
// Layout model: exactly one environment level per function activation. All
// let/let*/letrec/do contours flatten into slots of the enclosing function
// frame (nslots is the high-water mark; slots are not reused), so kLocal's
// depth operand counts lambda-boundary hops only. Named lets whose name is
// only ever tail-called and whose body creates no closures compile to
// in-frame jumps; everything else falls back to a real closure, which
// reproduces the interpreter's per-iteration frame freshness.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/scheme/value.hpp"
#include "support/result.hpp"

namespace mv::scheme {

class Engine;

enum class Op : std::uint8_t {
  kConst,        // push consts[a]
  kLocal,        // push env chain[depth a].slot[b]
  kSetLocal,     // pop -> env chain[depth a].slot[b] (pushes nothing)
  kGlobal,       // push globals[sym a]; unbound -> error
  kSetGlobal,    // pop -> globals[sym a]; unbound -> error
  kDefGlobal,    // pop -> globals[sym a] (define semantics)
  kPop,          // drop TOS
  kDup,          // duplicate TOS
  kJump,         // ip = a
  kJumpIfFalse,  // pop; if #f -> ip = a
  kJumpIfTrue,   // pop; if not #f -> ip = a
  kMakeClosure,  // push new closure over protos[a], capturing current frame
  kCall,         // a = nargs, b = const index of source expr (error text)
  kTailCall,     // like kCall but replaces the current frame
  kReturn,       // pop frame, push result in caller
  kCons,         // pop cdr, pop car, push (car . cdr) — engine-level cons
  kInitSlots,    // slots [a, a+b) of the current frame := unspecified
  kNameIfAnon,   // if TOS is an unnamed closure, name it sym a
  kCaseMatch,    // peek key at TOS; push whether it is eqv? to any datum
                 // in the list consts[a]
};

struct Insn {
  Op op;
  std::int32_t a = 0;
  std::int32_t b = 0;
};

struct Proto {
  std::string name;           // procedure name ("" = anonymous)
  std::vector<Insn> code;
  std::vector<Value> consts;  // literals + call-site exprs; GC-visited
  std::uint32_t nparams = 0;
  bool has_rest = false;      // rest list bound at slot nparams
  std::uint32_t nslots = 0;   // frame width incl. params and flat contours
  bool frame_escapes = false; // a closure captures this frame -> unpoolable
};

// Compiles one toplevel form, appending its proto (and any nested lambda
// protos) to the engine's proto table; returns the toplevel proto's index.
Result<int> compile_toplevel(Engine& engine, Value form);

}  // namespace mv::scheme
