#include "runtime/scheme/engine.hpp"

#include <algorithm>
#include <cmath>

#include "support/log.hpp"
#include "support/strings.hpp"

namespace mv::scheme {

namespace {
// SIGALRM ticks observed (per-process would be cleaner; the simulator runs
// one engine per process).
thread_local std::uint64_t g_alarm_ticks = 0;
}  // namespace

Engine::Engine(ros::SysIface& sys, Config config)
    : sys_(&sys), config_(config), heap_(sys, config.heap) {
  // Pre-intern special-form symbols.
  s_quote_ = intern("quote");
  s_if_ = intern("if");
  s_define_ = intern("define");
  s_set_ = intern("set!");
  s_lambda_ = intern("lambda");
  s_begin_ = intern("begin");
  s_let_ = intern("let");
  s_let_star_ = intern("let*");
  s_letrec_ = intern("letrec");
  s_cond_ = intern("cond");
  s_case_ = intern("case");
  s_else_ = intern("else");
  s_and_ = intern("and");
  s_or_ = intern("or");
  s_when_ = intern("when");
  s_unless_ = intern("unless");
  s_do_ = intern("do");
  s_quasiquote_ = intern("quasiquote");
  s_unquote_ = intern("unquote");
  s_arrow_ = intern("=>");
  s_named_lambda_ = intern("named-lambda");
}

SymId Engine::intern(const std::string& name) {
  const auto it = sym_ids_.find(name);
  if (it != sym_ids_.end()) return it->second;
  const SymId id = static_cast<SymId>(sym_names_.size());
  sym_names_.push_back(name);
  sym_ids_[name] = id;
  return id;
}

ros::SysIface& Engine::sys() {
  const Fiber* fiber = Fiber::current();
  for (auto it = thread_ifaces_.rbegin(); it != thread_ifaces_.rend(); ++it) {
    if (it->first == fiber) return *it->second;
  }
  return *sys_;
}

Engine::ThreadIfaceScope::ThreadIfaceScope(Engine& engine,
                                           ros::SysIface& iface)
    : engine_(&engine) {
  engine_->thread_ifaces_.emplace_back(Fiber::current(), &iface);
}

Engine::ThreadIfaceScope::~ThreadIfaceScope() {
  const Fiber* fiber = Fiber::current();
  auto& v = engine_->thread_ifaces_;
  for (std::size_t i = v.size(); i-- > 0;) {
    if (v[i].first == fiber) {
      v.erase(v.begin() + static_cast<long>(i));
      return;
    }
  }
}

Status Engine::init() {
  if (initialized_) return Status::ok();
  heap_.set_sys_provider([this]() -> ros::SysIface& { return sys(); });
  MV_RETURN_IF_ERROR(heap_.init());
  heap_.set_extra_root_marker([this](const Heap::RootVisitor& visit) {
    for (const auto& [sym, v] : globals_) visit(v);
    for (const auto& [id, v] : thread_thunks_) visit(v);
    if (global_env_ != nullptr) visit(Value::from_cell(global_env_));
    // Bytecode engine roots: compiled literals plus every live VM
    // context's operand stack and frame chain.
    for (const auto& proto : protos_) {
      for (const Value& c : proto->consts) visit(c);
    }
    for (const auto& [fiber, ctx] : vm_contexts_) {
      for (const Value& v : ctx->stack) visit(v);
      for (const VmFrame& fr : ctx->frames) {
        if (fr.env != nullptr) visit(Value::from_cell(fr.env));
        if (fr.closure != nullptr) visit(Value::from_cell(fr.closure));
      }
    }
  });
  MV_ASSIGN_OR_RETURN(global_env_, make_env(nullptr));
  // Tick cadence in VM instructions, scaled so both engines tick every
  // tick_every_evals * eval_cycles guest cycles.
  vm_tick_every_ = std::max<std::uint64_t>(
      1, config_.tick_every_evals * config_.eval_cycles /
             std::max<std::uint64_t>(1, config_.vm_insn_cycles));

  register_builtins();

  // The runtime's green-thread scheduler: SIGALRM at a fixed period drives
  // preemption checks ("The timer, getrusage() calls, and polling activity
  // is used to support Scheme-level cooperative threads in the run-time").
  if (config_.install_timer) {
    MV_RETURN_IF_ERROR(sys().sigaction(
        ros::kSigAlrm,
        [](int, std::uint64_t, ros::SysIface&) { ++g_alarm_ticks; }));
    MV_RETURN_IF_ERROR(sys().setitimer(config_.timer_us));
  }

  if (config_.load_boot_files) {
    MV_RETURN_IF_ERROR(load_boot_collection());
  }
  MV_RETURN_IF_ERROR(eval_prelude());
  initialized_ = true;
  return Status::ok();
}

Status Engine::load_boot_collection() {
  // Package management via the filesystem: probe and load the collection
  // tree, like Racket's boot sequence walking collects/.
  static const char* const kBootPaths[] = {
      "/collects/vessel/boot.vsl",
      "/collects/vessel/base.vsl",
      "/collects/vessel/list.vsl",
      "/collects/vessel/string.vsl",
      "/collects/vessel/math.vsl",
  };
  for (const char* path : kBootPaths) {
    auto st = sys().stat(path);
    if (!st) continue;  // absent collections are skipped (still stat'ed)
    MV_RETURN_IF_ERROR(load_path(path));
  }
  return Status::ok();
}

Status Engine::load_path(const std::string& path) {
  auto fd = sys().open(path, ros::kORdOnly);
  if (!fd) return fd.status();
  auto st = sys().stat(path);
  if (!st) return st.status();
  std::string src(st->size, '\0');
  auto n = sys().read(*fd, src.data(), src.size());
  MV_RETURN_IF_ERROR(sys().close(*fd));
  if (!n) return n.status();
  src.resize(*n);
  return eval_string(src).status();
}

Status Engine::eval_prelude() {
  // Library forms kept in Scheme (the parts of the "collection" every
  // program needs even when no boot files are installed).
  static const char kPrelude[] = R"PRELUDE(
(define (caar p) (car (car p)))
(define (cadr p) (car (cdr p)))
(define (cdar p) (cdr (car p)))
(define (cddr p) (cdr (cdr p)))
(define (caddr p) (car (cddr p)))
(define (cadddr p) (car (cdr (cddr p))))
(define (list-tail l k) (if (= k 0) l (list-tail (cdr l) (- k 1))))
(define (list-ref l k) (car (list-tail l k)))
(define (second l) (cadr l))
(define (third l) (caddr l))
(define (last-pair l) (if (pair? (cdr l)) (last-pair (cdr l)) l))
(define (memq x l)
  (cond ((null? l) #f)
        ((eq? x (car l)) l)
        (else (memq x (cdr l)))))
(define (member x l)
  (cond ((null? l) #f)
        ((equal? x (car l)) l)
        (else (member x (cdr l)))))
(define (assq x l)
  (cond ((null? l) #f)
        ((eq? x (caar l)) (car l))
        (else (assq x (cdr l)))))
(define (assoc x l)
  (cond ((null? l) #f)
        ((equal? x (caar l)) (car l))
        (else (assoc x (cdr l)))))
(define (map1 f l)
  (if (null? l) '() (cons (f (car l)) (map1 f (cdr l)))))
(define (map f l . more)
  (if (null? more)
      (map1 f l)
      (if (null? l) '()
          (cons (apply f (cons (car l) (map1 car more)))
                (apply map (cons f (cons (cdr l) (map1 cdr more))))))))
(define (for-each f l)
  (if (null? l) #t (begin (f (car l)) (for-each f (cdr l)))))
(define (filter pred l)
  (cond ((null? l) '())
        ((pred (car l)) (cons (car l) (filter pred (cdr l))))
        (else (filter pred (cdr l)))))
(define (fold-left f acc l)
  (if (null? l) acc (fold-left f (f acc (car l)) (cdr l))))
(define (iota n)
  (define (loop i) (if (= i n) '() (cons i (loop (+ i 1)))))
  (loop 0))
(define (vector->list v)
  (define (loop i)
    (if (= i (vector-length v)) '() (cons (vector-ref v i) (loop (+ i 1)))))
  (loop 0))
(define (list->vector l)
  (define v (make-vector (length l) 0))
  (define (loop i rest)
    (if (null? rest) v
        (begin (vector-set! v i (car rest)) (loop (+ i 1) (cdr rest)))))
  (loop 0 l))
(define (string-join parts sep)
  (cond ((null? parts) "")
        ((null? (cdr parts)) (car parts))
        (else (string-append (car parts) sep (string-join (cdr parts) sep)))))
(define (1+ n) (+ n 1))
(define (1- n) (- n 1))
)PRELUDE";
  return eval_string(kPrelude).status();
}

Result<int> Engine::spawn_interpreter_thread(Value thunk) {
  const int id = next_thunk_id_++;
  thread_thunks_[id] = thunk;  // GC root until the thread completes
  auto tid = sys().thread_create([this, id](ros::SysIface& child) {
    // All of this thread's OS interaction goes through its own interface
    // (its own nested AeroKernel thread when hybridized).
    ThreadIfaceScope scope(*this, child);
    const auto it = thread_thunks_.find(id);
    if (it == thread_thunks_.end()) return;
    std::vector<Value> no_args;
    auto r = apply_value(it->second, no_args);
    if (!r) {
      (void)child.write_str(2, "thread error: " + r.status().to_string() +
                                   "\n");
    }
    (void)flush();
    thread_thunks_.erase(id);
  });
  if (!tid) {
    thread_thunks_.erase(id);
    return tid.status();
  }
  return *tid;
}

// --- allocation helpers ------------------------------------------------------

Result<Value> Engine::cons(Value car, Value cdr) {
  RootScope scope(heap_);
  scope.add(car);
  scope.add(cdr);
  MV_ASSIGN_OR_RETURN(Cell* const cell, heap_.alloc(Cell::Type::kPair));
  cell->car = car;
  cell->cdr = cdr;
  return Value::from_cell(cell);
}

Result<Value> Engine::make_string(std::string s) {
  MV_ASSIGN_OR_RETURN(Cell* const cell, heap_.alloc(Cell::Type::kString));
  cell->str = std::move(s);
  return Value::from_cell(cell);
}

Result<Value> Engine::make_vector(std::size_t n, Value fill) {
  RootScope scope(heap_);
  scope.add(fill);
  MV_ASSIGN_OR_RETURN(Cell* const cell, heap_.alloc(Cell::Type::kVector));
  cell->vec.assign(n, fill);
  return Value::from_cell(cell);
}

Result<Value> Engine::make_builtin(std::string name, BuiltinFn fn) {
  MV_ASSIGN_OR_RETURN(Cell* const cell, heap_.alloc(Cell::Type::kBuiltin));
  cell->proc_name = std::move(name);
  cell->builtin = std::move(fn);
  return Value::from_cell(cell);
}

Result<Cell*> Engine::make_env(Cell* parent) {
  MV_ASSIGN_OR_RETURN(Cell* const cell, heap_.alloc(Cell::Type::kEnv));
  cell->parent_env = parent;
  return cell;
}

Result<Value> Engine::make_list(const std::vector<Value>& items) {
  RootScope scope(heap_);
  Value list = Value::nil();
  for (std::size_t i = items.size(); i-- > 0;) {
    scope.add(list);
    MV_ASSIGN_OR_RETURN(list, cons(items[i], list));
  }
  return list;
}

// --- environments ---------------------------------------------------------------

Status Engine::env_define(Cell* env, SymId sym, Value v) {
  if (env == global_env_ || env == nullptr) {
    globals_[sym] = v;
    return Status::ok();
  }
  heap_.write_barrier(env);
  for (auto& [s, existing] : env->bindings) {
    if (s == sym) {
      existing = v;
      return Status::ok();
    }
  }
  env->bindings.emplace_back(sym, v);
  return Status::ok();
}

Status Engine::env_set(Cell* env, SymId sym, Value v) {
  for (Cell* e = env; e != nullptr; e = e->parent_env) {
    if (e == global_env_) break;
    for (auto& [s, existing] : e->bindings) {
      if (s == sym) {
        heap_.write_barrier(e);
        existing = v;
        return Status::ok();
      }
    }
  }
  const auto it = globals_.find(sym);
  if (it == globals_.end()) {
    return err(Err::kNoEnt, "set!: unbound variable " + sym_name(sym));
  }
  it->second = v;
  return Status::ok();
}

Result<Value> Engine::env_lookup(Cell* env, SymId sym) {
  for (Cell* e = env; e != nullptr; e = e->parent_env) {
    if (e == global_env_) break;
    for (const auto& [s, v] : e->bindings) {
      if (s == sym) return v;
    }
  }
  const auto it = globals_.find(sym);
  if (it != globals_.end()) return it->second;
  return err(Err::kNoEnt, "unbound variable: " + sym_name(sym));
}

void Engine::define_global(const std::string& name, Value v) {
  globals_[intern(name)] = v;
}

void Engine::define_builtin(const std::string& name, BuiltinFn fn) {
  auto b = make_builtin(name, std::move(fn));
  if (b) globals_[intern(name)] = *b;
}

// --- printing --------------------------------------------------------------------

namespace {
std::string format_real(double d) {
  if (d == static_cast<std::int64_t>(d) && std::abs(d) < 1e15) {
    return strfmt("%.1f", d);
  }
  std::string s = strfmt("%.9g", d);
  return s;
}
}  // namespace

std::string Engine::to_display(const Value& v) const {
  switch (v.tag) {
    case Value::Tag::kNil: return "()";
    case Value::Tag::kUnspecified: return "";
    case Value::Tag::kEof: return "#<eof>";
    case Value::Tag::kBool: return v.b ? "#t" : "#f";
    case Value::Tag::kInt: return strfmt("%lld", static_cast<long long>(v.i));
    case Value::Tag::kReal: return format_real(v.d);
    case Value::Tag::kChar: return std::string(1, v.c);
    case Value::Tag::kSym: return sym_name(v.sym);
    case Value::Tag::kCell: break;
  }
  const Cell* c = v.cell;
  switch (c->type) {
    case Cell::Type::kString:
      return c->str;
    case Cell::Type::kPair: {
      std::string out = "(";
      Value cur = v;
      bool first = true;
      while (cur.is_pair()) {
        if (!first) out += " ";
        first = false;
        out += to_display(cur.cell->car);
        cur = cur.cell->cdr;
      }
      if (!cur.is_nil()) {
        out += " . ";
        out += to_display(cur);
      }
      return out + ")";
    }
    case Cell::Type::kVector: {
      std::string out = "#(";
      for (std::size_t i = 0; i < c->vec.size(); ++i) {
        if (i > 0) out += " ";
        out += to_display(c->vec[i]);
      }
      return out + ")";
    }
    case Cell::Type::kClosure:
      return "#<procedure:" +
             (c->proc_name.empty() ? "anonymous" : c->proc_name) + ">";
    case Cell::Type::kBuiltin:
      return "#<procedure:" + c->proc_name + ">";
    case Cell::Type::kEnv:
      return "#<environment>";
    case Cell::Type::kFree:
      return "#<freed>";
  }
  return "#<unknown>";
}

std::string Engine::to_write(const Value& v) const {
  if (v.tag == Value::Tag::kChar) {
    if (v.c == ' ') return "#\\space";
    if (v.c == '\n') return "#\\newline";
    return strfmt("#\\%c", v.c);
  }
  if (v.is_string()) {
    std::string out = "\"";
    for (const char c : v.cell->str) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out + "\"";
  }
  if (v.is_pair()) {
    std::string out = "(";
    Value cur = v;
    bool first = true;
    while (cur.is_pair()) {
      if (!first) out += " ";
      first = false;
      out += to_write(cur.cell->car);
      cur = cur.cell->cdr;
    }
    if (!cur.is_nil()) {
      out += " . ";
      out += to_write(cur);
    }
    return out + ")";
  }
  return to_display(v);
}

// --- output ------------------------------------------------------------------------

Status Engine::out(const std::string& text) {
  out_buf_ += text;
  // stdio-style flushing: a full buffer goes out as one write().
  if (out_buf_.size() >= 4096) return flush();
  return Status::ok();
}

Status Engine::flush() {
  if (out_buf_.empty()) return Status::ok();
  auto n = sys().write_str(1, out_buf_);
  out_buf_.clear();
  return n.status();
}

// --- stepping / ticks -----------------------------------------------------------------

void Engine::count_step() {
  ++evals_;
  pending_charge_ += config_.eval_cycles;
  if (pending_charge_ >= 64 * config_.eval_cycles) {
    sys().charge_user(pending_charge_);
    pending_charge_ = 0;
  }
  if (evals_ >= next_tick_) {
    next_tick_ = evals_ + config_.tick_every_evals;
    tick();
  }
}

void Engine::tick() {
  ++ticks_;
  // The scheduler quantum check: poll for ready I/O; periodically sample
  // resource usage (Fig 12's poll / getrusage traffic).
  (void)sys().poll0();
  if (ticks_ % 4 == 0) (void)sys().getrusage();
  (void)flush();
}

// --- top-level drivers --------------------------------------------------------------

Result<Value> Engine::eval_string(const std::string& src) {
  MV_ASSIGN_OR_RETURN(const std::vector<Value> forms, reader_.read_all(src));
  Value result = Value::unspecified();
  RootScope scope(heap_);
  // Root every form up front: evaluating form k must not collect the ASTs of
  // forms k+1..n.
  for (const Value& form : forms) scope.add(form);
  for (const Value& form : forms) {
    MV_ASSIGN_OR_RETURN(result, eval_toplevel(form));
  }
  return result;
}

Result<std::string> Engine::eval_to_string(const std::string& src) {
  MV_ASSIGN_OR_RETURN(const Value v, eval_string(src));
  return to_display(v);
}

int Engine::repl() {
  // The interactive interface: identical under native and HRT execution.
  (void)sys().write_str(1, "vessel> ");
  (void)flush();
  std::string input;
  char buf[256];
  for (;;) {
    auto n = sys().read(0, buf, sizeof(buf));
    if (!n || *n == 0) break;  // EOF
    input.append(buf, *n);
    // Evaluate complete lines.
    std::size_t nl;
    while ((nl = input.find('\n')) != std::string::npos) {
      const std::string line = input.substr(0, nl);
      input.erase(0, nl + 1);
      if (line == ",exit" || line == "(exit)") {
        (void)flush();
        return 0;
      }
      if (!std::string_view(trim(line)).empty()) {
        auto result = eval_to_string(line);
        if (result) {
          (void)out(*result + "\n");
        } else {
          (void)out("error: " + result.status().to_string() + "\n");
        }
      }
      (void)out("vessel> ");
      (void)flush();
    }
  }
  (void)flush();
  return 0;
}

int vessel_main(ros::SysIface& sys, const std::string& batch_source,
                bool use_launcher_thread, const Engine::Config& config) {
  // "Our port of Racket takes the form of an instance of the Racket engine
  // embedded into a simple C program... The C program launches a pthread
  // that in turn starts the engine."
  int exit_code = 0;
  auto engine_body = [&exit_code, &batch_source, &config](ros::SysIface& tsys) {
    Engine engine(tsys, config);
    const Status up = engine.init();
    if (!up.is_ok()) {
      (void)tsys.write_str(2, "vessel: init failed: " + up.to_string() + "\n");
      exit_code = 70;
      return;
    }
    if (batch_source.empty()) {
      exit_code = engine.repl();
    } else {
      auto r = engine.eval_string(batch_source);
      (void)engine.flush();
      if (!r) {
        (void)tsys.write_str(2, "vessel: " + r.status().to_string() + "\n");
        exit_code = 1;
      }
    }
  };
  if (use_launcher_thread) {
    auto tid = sys.thread_create(engine_body);
    if (!tid) return 70;
    (void)sys.thread_join(*tid);
  } else {
    engine_body(sys);
  }
  return exit_code;
}

}  // namespace mv::scheme
