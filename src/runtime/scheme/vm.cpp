#include "runtime/scheme/vm.hpp"

#include <memory>
#include <vector>

#include "runtime/scheme/engine.hpp"
#include "support/strings.hpp"

// The Vessel bytecode VM dispatch loop. GC discipline: the operand stack
// and every frame's env/closure cell are roots (marked through the engine's
// extra_root_marker), so values are safe exactly while they are on the
// stack or in frame slots. Every allocation point below keeps its operands
// in one of those two places (or in an explicit RootScope) until the new
// cell is reachable.

namespace mv::scheme {

VmContext& Engine::current_vm_context() {
  const Fiber* fiber = Fiber::current();
  for (auto& [f, ctx] : vm_contexts_) {
    if (f == fiber) return *ctx;
  }
  vm_contexts_.emplace_back(fiber, std::make_unique<VmContext>());
  return *vm_contexts_.back().second;
}

std::uint64_t Engine::vm_max_frame_depth() const noexcept {
  std::uint64_t max_depth = 0;
  for (const auto& [f, ctx] : vm_contexts_) {
    if (ctx->max_frames_depth > max_depth) max_depth = ctx->max_frames_depth;
  }
  return max_depth;
}

// Per-instruction accounting. Charge batching uses the same 64-step
// threshold as count_step so syscall-visible charge_user calls batch the
// same way; the tick cadence is scaled (vm_tick_every_) so wall-clock
// poll/getrusage/timer traffic matches the interpreter's.
void Engine::count_vm_step() {
  ++evals_;
  pending_charge_ += config_.vm_insn_cycles;
  if (pending_charge_ >= 64 * config_.eval_cycles) {
    sys().charge_user(pending_charge_);
    pending_charge_ = 0;
  }
  if (evals_ >= next_tick_) {
    next_tick_ = evals_ + vm_tick_every_;
    tick();
  }
}

Result<Value> Engine::eval_toplevel(Value form) {
  if (config_.exec != Exec::kBytecodeVm) return eval(form, global_env_);
  MV_ASSIGN_OR_RETURN(const int idx, compile_toplevel(*this, form));
  return run_toplevel_proto(idx);
}

Status Engine::vm_push_call(VmContext& ctx, std::size_t nargs) {
  const std::size_t fnpos = ctx.stack.size() - nargs - 1;
  Cell* const cl = ctx.stack[fnpos].cell;
  const Proto* const proto =
      protos_[static_cast<std::size_t>(cl->proto_idx)].get();
  const std::size_t fixed = proto->nparams;
  if (nargs < fixed || (!proto->has_rest && nargs > fixed)) {
    return err(Err::kInval,
               strfmt("%s: expected %zu argument(s), got %zu",
                      cl->proc_name.empty() ? "procedure"
                                            : cl->proc_name.c_str(),
                      fixed, nargs));
  }
  // Allocation is safe: cl and the args are still on the operand stack.
  MV_ASSIGN_OR_RETURN(Cell* const frame,
                      heap_.alloc_env_frame(proto->nslots));
  frame->vec.assign(proto->nslots, Value{});
  frame->parent_env = cl->closure_env;
  heap_.write_barrier(frame);
  for (std::size_t i = 0; i < fixed; ++i) {
    frame->vec[i] = ctx.stack[fnpos + 1 + i];
  }
  if (proto->has_rest) {
    RootScope scope(heap_);
    scope.add(Value::from_cell(frame));
    Value rest = Value::nil();
    for (std::size_t i = nargs; i-- > fixed;) {
      scope.add(rest);
      MV_ASSIGN_OR_RETURN(rest, cons(ctx.stack[fnpos + 1 + i], rest));
    }
    frame->vec[fixed] = rest;
  }
  ctx.stack.resize(fnpos);
  VmFrame fr;
  fr.proto = proto;
  fr.env = frame;
  fr.closure = cl;
  fr.ip = 0;
  fr.stack_base = fnpos;
  fr.poolable = !proto->frame_escapes;
  ctx.frames.push_back(fr);
  if (ctx.frames.size() > ctx.max_frames_depth) {
    ctx.max_frames_depth = ctx.frames.size();
  }
  return Status::ok();
}

Result<Value> Engine::vm_run(VmContext& ctx, std::size_t frame_floor) {
  std::vector<Value>& stack = ctx.stack;

  // Pop the current frame, recycling its env when poolable (a non-escaping
  // frame is unreachable once its VmFrame record is gone). Returns true
  // when the floor frame returned; `out` then carries the final result.
  const auto do_return = [&](Value result, Value* out) -> bool {
    const VmFrame fr = ctx.frames.back();
    ctx.frames.pop_back();
    if (fr.poolable) heap_.recycle_env_frame(fr.env);
    stack.resize(fr.stack_base);
    if (ctx.frames.size() == frame_floor) {
      *out = result;
      return true;
    }
    stack.push_back(result);
    return false;
  };

  for (;;) {
    VmFrame& fr = ctx.frames.back();
    const Insn insn = fr.proto->code[fr.ip++];
    count_vm_step();

    switch (insn.op) {
      case Op::kConst:
        stack.push_back(fr.proto->consts[static_cast<std::size_t>(insn.a)]);
        break;

      case Op::kLocal: {
        Cell* e = fr.env;
        for (std::int32_t d = 0; d < insn.a; ++d) e = e->parent_env;
        stack.push_back(e->vec[static_cast<std::size_t>(insn.b)]);
        break;
      }

      case Op::kSetLocal: {
        Cell* e = fr.env;
        for (std::int32_t d = 0; d < insn.a; ++d) e = e->parent_env;
        e->vec[static_cast<std::size_t>(insn.b)] = stack.back();
        stack.pop_back();
        heap_.write_barrier(e);
        break;
      }

      case Op::kGlobal: {
        const auto it = globals_.find(static_cast<SymId>(insn.a));
        if (it == globals_.end()) {
          return err(Err::kNoEnt, "unbound variable: " +
                                      sym_name(static_cast<SymId>(insn.a)));
        }
        stack.push_back(it->second);
        break;
      }

      case Op::kSetGlobal: {
        const auto it = globals_.find(static_cast<SymId>(insn.a));
        if (it == globals_.end()) {
          return err(Err::kNoEnt, "set!: unbound variable " +
                                      sym_name(static_cast<SymId>(insn.a)));
        }
        it->second = stack.back();
        stack.pop_back();
        break;
      }

      case Op::kDefGlobal:
        globals_[static_cast<SymId>(insn.a)] = stack.back();
        stack.pop_back();
        break;

      case Op::kPop:
        stack.pop_back();
        break;

      case Op::kDup:
        stack.push_back(stack.back());
        break;

      case Op::kJump:
        fr.ip = static_cast<std::uint32_t>(insn.a);
        break;

      case Op::kJumpIfFalse: {
        const Value v = stack.back();
        stack.pop_back();
        if (!v.truthy()) fr.ip = static_cast<std::uint32_t>(insn.a);
        break;
      }

      case Op::kJumpIfTrue: {
        const Value v = stack.back();
        stack.pop_back();
        if (v.truthy()) fr.ip = static_cast<std::uint32_t>(insn.a);
        break;
      }

      case Op::kMakeClosure: {
        MV_ASSIGN_OR_RETURN(Cell* const cl,
                            heap_.alloc(Cell::Type::kClosure));
        cl->proto_idx = insn.a;
        cl->closure_env = ctx.frames.back().env;
        cl->proc_name = protos_[static_cast<std::size_t>(insn.a)]->name;
        stack.push_back(Value::from_cell(cl));
        break;
      }

      case Op::kCall:
      case Op::kTailCall: {
        const std::size_t nargs = static_cast<std::size_t>(insn.a);
        const std::size_t fnpos = stack.size() - nargs - 1;
        const Value fn = stack[fnpos];
        if (!fn.is_callable()) {
          return err(Err::kInval,
                     "application of non-procedure: " + to_display(fn) +
                         " in " +
                         to_display(fr.proto->consts[
                             static_cast<std::size_t>(insn.b)]));
        }
        const bool is_tail = insn.op == Op::kTailCall;

        if (fn.cell->type == Cell::Type::kBuiltin ||
            fn.cell->proto_idx < 0) {
          // Builtin, or an interpreter closure leaking across engines:
          // evaluate to a value here (args stay rooted on the operand
          // stack while the host copy is in flight).
          std::vector<Value> args(stack.begin() +
                                      static_cast<std::ptrdiff_t>(fnpos + 1),
                                  stack.end());
          Result<Value> r = fn.cell->type == Cell::Type::kBuiltin
                                ? fn.cell->builtin(*this, args)
                                : apply_value(fn, args);
          MV_RETURN_IF_ERROR(r.status());
          stack.resize(fnpos);
          if (is_tail) {
            Value out;
            if (do_return(*r, &out)) return out;
          } else {
            stack.push_back(*r);
          }
          break;
        }

        if (!is_tail) {
          MV_RETURN_IF_ERROR(vm_push_call(ctx, nargs));
          break;
        }

        // Tail call to a bytecode closure: replace the current frame.
        VmFrame& cur = ctx.frames.back();
        Cell* const cl = fn.cell;
        const Proto* const proto =
            protos_[static_cast<std::size_t>(cl->proto_idx)].get();
        const std::size_t fixed = proto->nparams;
        if (nargs < fixed || (!proto->has_rest && nargs > fixed)) {
          return err(Err::kInval,
                     strfmt("%s: expected %zu argument(s), got %zu",
                            cl->proc_name.empty() ? "procedure"
                                                  : cl->proc_name.c_str(),
                            fixed, nargs));
        }

        if (cl == cur.closure && cur.poolable) {
          // Self tail call to a non-escaping frame: rebind in place. Slots
          // need no clearing — correct programs store before every read
          // (params here; contour slots at their binding forms).
          Cell* const frame = cur.env;
          heap_.write_barrier(frame);
          for (std::size_t i = 0; i < fixed; ++i) {
            frame->vec[i] = stack[fnpos + 1 + i];
          }
          if (proto->has_rest) {
            RootScope scope(heap_);
            Value rest = Value::nil();
            for (std::size_t i = nargs; i-- > fixed;) {
              scope.add(rest);
              MV_ASSIGN_OR_RETURN(rest, cons(stack[fnpos + 1 + i], rest));
            }
            frame->vec[fixed] = rest;
          }
          stack.resize(cur.stack_base);
          cur.ip = 0;
          break;
        }

        MV_ASSIGN_OR_RETURN(Cell* const frame,
                            heap_.alloc_env_frame(proto->nslots));
        frame->vec.assign(proto->nslots, Value{});
        frame->parent_env = cl->closure_env;
        heap_.write_barrier(frame);
        for (std::size_t i = 0; i < fixed; ++i) {
          frame->vec[i] = stack[fnpos + 1 + i];
        }
        if (proto->has_rest) {
          RootScope scope(heap_);
          scope.add(Value::from_cell(frame));
          Value rest = Value::nil();
          for (std::size_t i = nargs; i-- > fixed;) {
            scope.add(rest);
            MV_ASSIGN_OR_RETURN(rest, cons(stack[fnpos + 1 + i], rest));
          }
          frame->vec[fixed] = rest;
        }
        Cell* const old_env = cur.env;
        const bool old_poolable = cur.poolable;
        stack.resize(cur.stack_base);
        cur.proto = proto;
        cur.env = frame;
        cur.closure = cl;
        cur.ip = 0;
        cur.poolable = !proto->frame_escapes;
        if (old_poolable) heap_.recycle_env_frame(old_env);
        break;
      }

      case Op::kReturn: {
        const Value result = stack.back();
        Value out;
        if (do_return(result, &out)) return out;
        break;
      }

      case Op::kCons: {
        const std::size_t n = stack.size();
        // Operands stay on the (rooted) stack through the allocation.
        MV_ASSIGN_OR_RETURN(const Value pair,
                            cons(stack[n - 2], stack[n - 1]));
        stack.resize(n - 2);
        stack.push_back(pair);
        break;
      }

      case Op::kInitSlots: {
        Cell* const frame = fr.env;
        for (std::int32_t i = 0; i < insn.b; ++i) {
          frame->vec[static_cast<std::size_t>(insn.a + i)] =
              Value::unspecified();
        }
        heap_.write_barrier(frame);
        break;
      }

      case Op::kNameIfAnon: {
        const Value v = stack.back();
        if (v.is_cell() && v.cell->type == Cell::Type::kClosure &&
            v.cell->proc_name.empty()) {
          v.cell->proc_name = sym_name(static_cast<SymId>(insn.a));
        }
        break;
      }

      case Op::kCaseMatch: {
        const Value key = stack.back();
        bool hit = false;
        for (Value d = fr.proto->consts[static_cast<std::size_t>(insn.a)];
             !hit && d.is_pair(); d = d.cell->cdr) {
          hit = value_eqv(key, d.cell->car);
        }
        stack.push_back(Value::boolean(hit));
        break;
      }
    }
  }
}

Result<Value> Engine::run_toplevel_proto(int proto_idx) {
  VmContext& ctx = current_vm_context();
  const std::size_t floor = ctx.frames.size();
  const std::size_t entry = ctx.stack.size();
  const Proto* const proto =
      protos_[static_cast<std::size_t>(proto_idx)].get();
  MV_ASSIGN_OR_RETURN(Cell* const frame,
                      heap_.alloc_env_frame(proto->nslots));
  frame->vec.assign(proto->nslots, Value{});
  frame->parent_env = nullptr;
  heap_.write_barrier(frame);
  VmFrame fr;
  fr.proto = proto;
  fr.env = frame;
  fr.closure = nullptr;
  fr.ip = 0;
  fr.stack_base = entry;
  fr.poolable = !proto->frame_escapes;
  ctx.frames.push_back(fr);
  if (ctx.frames.size() > ctx.max_frames_depth) {
    ctx.max_frames_depth = ctx.frames.size();
  }
  Result<Value> result = vm_run(ctx, floor);
  if (!result.is_ok()) {
    // Unwind to the entry state; abandoned envs are ordinary garbage.
    ctx.frames.resize(floor);
    ctx.stack.resize(entry);
  }
  return result;
}

Result<Value> Engine::vm_apply(Value fn, std::vector<Value>& args) {
  VmContext& ctx = current_vm_context();
  const std::size_t floor = ctx.frames.size();
  const std::size_t entry = ctx.stack.size();
  ctx.stack.push_back(fn);
  for (const Value& a : args) ctx.stack.push_back(a);
  const Status st = vm_push_call(ctx, args.size());
  if (!st.is_ok()) {
    ctx.stack.resize(entry);
    return st;
  }
  Result<Value> result = vm_run(ctx, floor);
  if (!result.is_ok()) {
    ctx.frames.resize(floor);
    ctx.stack.resize(entry);
  }
  return result;
}

}  // namespace mv::scheme
