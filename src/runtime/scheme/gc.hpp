#pragma once

// The Vessel conservative garbage collector, modeled on SenoraGC (the
// portable conservative collector the paper's Racket port used). Object
// payloads are host-side Cell structs, but every behaviour the paper's
// evaluation measures is driven through the guest OS interface:
//
//   - heap chunks are allocated with mmap() and released with munmap()
//     ("mmap() and munmap() dominate the system calls for the creation of
//      the heap ... small sections of the heap are frequently freed with
//      calls to munmap()")
//   - after each collection the heap is write-protected with mprotect();
//     the first mutation of a chunk takes a SIGSEGV whose handler (installed
//     with rt_sigaction) unprotects the chunk — the classic mprotect-driven
//     write-barrier that generates the rt_sigaction/rt_sigreturn/mprotect
//     traffic of Figs 11 and 12
//   - cell initialization touches the chunk's guest pages, so demand-paging
//     faults and RSS growth are real

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "ros/guest.hpp"
#include "support/fiber.hpp"
#include "runtime/scheme/value.hpp"
#include "support/result.hpp"

namespace mv::scheme {

struct GcStats {
  std::uint64_t collections = 0;
  std::uint64_t cells_allocated = 0;
  std::uint64_t cells_swept = 0;
  std::uint64_t chunks_mapped = 0;
  std::uint64_t chunks_unmapped = 0;
  std::uint64_t barrier_hits = 0;
  std::uint64_t live_cells = 0;
  // Env-frame pool traffic (bytecode VM): recycled frames never count
  // against the allocation trigger, which is what cuts collections.
  std::uint64_t env_reuses = 0;
  std::uint64_t env_recycles = 0;
};

class Heap {
 public:
  struct Config {
    std::uint64_t chunk_bytes = 8 * 4096;  // 8 pages per chunk
    std::uint64_t cell_bytes = 64;         // guest footprint per cell
    // Collect when this many cells were allocated since the last GC.
    std::uint64_t gc_allocation_trigger = 8 * 1024;
    // Arm mprotect write barriers after each collection (generational
    // dirty-tracking, as Racket's GC does).
    bool write_barriers = true;
    // Keep at least this many chunks mapped (avoids map/unmap thrash).
    std::size_t min_chunks = 8;
    // Chunks premapped at startup, and how many of those the boot-time
    // sizing pass releases again (the mmap/munmap storm of Fig 11).
    int startup_chunks = 32;
    int startup_trim = 8;
  };

  Heap(ros::SysIface& sys, Config config);
  Heap(ros::SysIface& sys) : Heap(sys, Config{}) {}

  // Install the SIGSEGV barrier handler (rt_sigaction) and premap the
  // initial arena. Call once at engine startup.
  Status init();

  // Allocate a cell of the given type. May trigger a collection first; all
  // live data must be reachable from the registered roots.
  Result<Cell*> alloc(Cell::Type type);

  // --- env-frame pooling ---------------------------------------------------
  // Size-class pools of kEnv cells used by the bytecode VM for call frames.
  // A pooled allocation bypasses the GC trigger (no allocation pressure);
  // when the right class is empty it falls back to a normal alloc. Frames
  // whose proto never captures them (no closure escapes) are recycled on
  // return instead of becoming garbage.
  Result<Cell*> alloc_env_frame(std::size_t slots);
  void recycle_env_frame(Cell* frame);

  // --- root management -----------------------------------------------------
  // The shadow stack: evaluator frames push temporaries that must survive
  // allocation. RootScope pops automatically. One stack exists per fiber so
  // interpreter threads (which interleave at syscall block points) cannot
  // unbalance each other's scopes.
  void push_root(Value v) { current_stack().push_back(v); }
  void pop_roots(std::size_t n) {
    auto& stack = current_stack();
    stack.resize(stack.size() - n);
  }
  [[nodiscard]] std::size_t root_depth() { return current_stack().size(); }
  // Persistent roots (the global environment, green-thread states).
  void add_persistent_root(Value v) { persistent_roots_.push_back(v); }
  // Callback-based roots for containers the heap cannot see (the engine's
  // global binding table).
  using RootVisitor = std::function<void(Value)>;
  void set_extra_root_marker(std::function<void(const RootVisitor&)> fn) {
    extra_marker_ = std::move(fn);
  }

  // Route guest OS calls through the current thread's interface (set by the
  // engine once interpreter threads exist; defaults to the embedding iface).
  using SysProvider = std::function<ros::SysIface&()>;
  void set_sys_provider(SysProvider provider) {
    sys_provider_ = std::move(provider);
  }

  // Mutation barrier: called by set-car!/set-cdr!/vector-set!/define. Writes
  // to a protected chunk SIGSEGV into the handler, which unprotects it.
  void write_barrier(Cell* cell);

  // Force a full collection.
  void collect();

  [[nodiscard]] const GcStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t bytes_mapped() const noexcept {
    return chunks_.size() * config_.chunk_bytes;
  }

 private:
  struct Chunk {
    std::uint64_t guest_base = 0;
    std::vector<std::unique_ptr<Cell>> cells;
    std::vector<Cell*> free_list;
    std::uint64_t live = 0;
    bool protected_ = false;
    std::uint64_t touched_pages = 0;  // demand-fault shaping
  };

  [[nodiscard]] ros::SysIface& sys() {
    return sys_provider_ ? sys_provider_() : *sys_;
  }
  std::vector<Value>& current_stack();

  Status map_chunk();
  // Host-side bookkeeping for a freshly mmap'ed chunk base.
  void add_chunk(std::uint64_t guest_base);
  void unmap_chunk(std::size_t index);
  void mark(Value v);
  void mark_cell(Cell* cell);
  [[nodiscard]] std::uint64_t cells_per_chunk() const {
    return config_.chunk_bytes / config_.cell_bytes;
  }
  Chunk* chunk_of(const Cell* cell);
  // Pool class for a frame of `slots` slots, or -1 if unpooled (too big).
  static int pool_class(std::size_t slots);
  // Return every pooled frame to the allocator ahead of a mark phase (the
  // pool holds dead cells which must not survive as kEnv through a sweep).
  void drain_env_pools();

  ros::SysIface* sys_;
  Config config_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  // Per-fiber shadow stacks (index 0 doubles as the no-fiber fallback).
  std::vector<std::pair<const Fiber*, std::vector<Value>>> root_stacks_;
  std::size_t current_stack_hint_ = 0;
  std::vector<Value> persistent_roots_;
  std::function<void(const RootVisitor&)> extra_marker_;
  SysProvider sys_provider_;
  std::uint64_t since_gc_ = 0;
  // Size classes: <=8, <=16, <=32, <=64 slots. Larger frames are unpooled.
  std::vector<Cell*> env_pools_[4];
  GcStats stats_;
  bool in_gc_ = false;
  bool initialized_ = false;
  ros::GuestSigHandler barrier_handler_;
};

// RAII shadow-stack scope.
class RootScope {
 public:
  explicit RootScope(Heap& heap) : heap_(&heap) {}
  ~RootScope() { heap_->pop_roots(count_); }
  RootScope(const RootScope&) = delete;
  RootScope& operator=(const RootScope&) = delete;

  void add(Value v) {
    heap_->push_root(v);
    ++count_;
  }

 private:
  Heap* heap_;
  std::size_t count_ = 0;
};

}  // namespace mv::scheme
