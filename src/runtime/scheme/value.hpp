#pragma once

// Vessel Scheme value model. Immediates (nil, booleans, fixnums, flonums,
// chars, interned symbols) live in the Value struct; everything else (pairs,
// strings, vectors, closures, environments) lives in GC-managed cells whose
// *pages* are real guest memory (see gc.hpp).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/result.hpp"

namespace mv::scheme {

class Cell;
class Engine;

using SymId = std::uint32_t;

struct Value {
  enum class Tag : std::uint8_t {
    kNil,
    kUnspecified,
    kEof,
    kBool,
    kInt,
    kReal,
    kChar,
    kSym,
    kCell,
  };

  Tag tag = Tag::kNil;
  union {
    bool b;
    std::int64_t i;
    double d;
    char c;
    SymId sym;
    Cell* cell;
  };

  Value() : tag(Tag::kNil), cell(nullptr) {}

  static Value nil() { return Value{}; }
  static Value unspecified() {
    Value v;
    v.tag = Tag::kUnspecified;
    return v;
  }
  static Value eof() {
    Value v;
    v.tag = Tag::kEof;
    return v;
  }
  static Value boolean(bool b) {
    Value v;
    v.tag = Tag::kBool;
    v.b = b;
    return v;
  }
  static Value integer(std::int64_t i) {
    Value v;
    v.tag = Tag::kInt;
    v.i = i;
    return v;
  }
  static Value real(double d) {
    Value v;
    v.tag = Tag::kReal;
    v.d = d;
    return v;
  }
  static Value character(char c) {
    Value v;
    v.tag = Tag::kChar;
    v.c = c;
    return v;
  }
  static Value symbol(SymId s) {
    Value v;
    v.tag = Tag::kSym;
    v.sym = s;
    return v;
  }
  static Value from_cell(Cell* cell) {
    Value v;
    v.tag = Tag::kCell;
    v.cell = cell;
    return v;
  }

  [[nodiscard]] bool is_nil() const { return tag == Tag::kNil; }
  [[nodiscard]] bool is_bool() const { return tag == Tag::kBool; }
  [[nodiscard]] bool is_int() const { return tag == Tag::kInt; }
  [[nodiscard]] bool is_real() const { return tag == Tag::kReal; }
  [[nodiscard]] bool is_number() const { return is_int() || is_real(); }
  [[nodiscard]] bool is_char() const { return tag == Tag::kChar; }
  [[nodiscard]] bool is_sym() const { return tag == Tag::kSym; }
  [[nodiscard]] bool is_cell() const { return tag == Tag::kCell; }
  [[nodiscard]] bool is_pair() const;
  [[nodiscard]] bool is_string() const;
  [[nodiscard]] bool is_vector() const;
  [[nodiscard]] bool is_callable() const;
  [[nodiscard]] bool is_env() const;

  // Scheme truthiness: everything but #f is true.
  [[nodiscard]] bool truthy() const { return !(is_bool() && !b); }

  [[nodiscard]] double as_real() const {
    return is_real() ? d : static_cast<double>(i);
  }
};

// Builtin procedure: receives evaluated arguments; may allocate.
using BuiltinFn =
    std::function<Result<Value>(Engine&, std::vector<Value>& args)>;

class Cell {
 public:
  enum class Type : std::uint8_t {
    kFree,
    kPair,
    kString,
    kVector,
    kClosure,
    kBuiltin,
    kEnv,
  };

  Type type = Type::kFree;
  bool marked = false;
  std::uint64_t guest_addr = 0;  // where this cell "lives" in guest memory

  // --- pair ---
  Value car, cdr;
  // --- string ---
  std::string str;
  // --- vector / closure captures ---
  std::vector<Value> vec;
  // --- closure ---
  std::vector<SymId> params;
  SymId rest_param = 0;   // 0 = none; variadic tail parameter otherwise
  bool has_rest = false;
  Value body;             // list of body expressions
  Cell* closure_env = nullptr;
  std::string proc_name;  // for error messages
  std::int32_t proto_idx = -1;  // >= 0: bytecode closure (index into Engine protos)
  // --- builtin ---
  BuiltinFn builtin;
  // --- environment ---
  std::vector<std::pair<SymId, Value>> bindings;
  Cell* parent_env = nullptr;

  void reset() {
    type = Type::kFree;
    marked = false;
    car = Value{};
    cdr = Value{};
    str.clear();
    vec.clear();
    params.clear();
    has_rest = false;
    body = Value{};
    closure_env = nullptr;
    proc_name.clear();
    proto_idx = -1;
    builtin = nullptr;
    bindings.clear();
    parent_env = nullptr;
  }
};

inline bool Value::is_pair() const {
  return is_cell() && cell->type == Cell::Type::kPair;
}
inline bool Value::is_string() const {
  return is_cell() && cell->type == Cell::Type::kString;
}
inline bool Value::is_vector() const {
  return is_cell() && cell->type == Cell::Type::kVector;
}
inline bool Value::is_callable() const {
  return is_cell() && (cell->type == Cell::Type::kClosure ||
                       cell->type == Cell::Type::kBuiltin);
}
inline bool Value::is_env() const {
  return is_cell() && cell->type == Cell::Type::kEnv;
}

// Structural equality (equal?); eqv? and eq? are shallower.
bool value_eq(const Value& a, const Value& b);     // eq?  (identity)
bool value_eqv(const Value& a, const Value& b);    // eqv? (numbers by value)
bool value_equal(const Value& a, const Value& b);  // equal? (deep)

}  // namespace mv::scheme
