#pragma once

// The Vessel reader: s-expression lexer + parser producing Value trees.
// Supports the dialect the benchmark programs and prelude use: lists, dotted
// pairs, quote/quasiquote sugar, #t/#f, characters (#\a, #\space, #\newline),
// strings with escapes, fixnums, flonums (incl. scientific notation), and
// comments (; to end of line, #| ... |# blocks).

#include <string>
#include <vector>

#include "runtime/scheme/value.hpp"
#include "support/result.hpp"

namespace mv::scheme {

class Engine;

class Reader {
 public:
  explicit Reader(Engine& engine) : engine_(&engine) {}

  // Parse every top-level form in `src`.
  Result<std::vector<Value>> read_all(const std::string& src);

  // Parse one form starting at `pos`; advances pos. Returns EOF value when
  // input is exhausted.
  Result<Value> read_one(const std::string& src, std::size_t* pos);

 private:
  struct Token {
    enum class Kind {
      kLParen,
      kRParen,
      kQuote,
      kQuasiquote,
      kUnquote,
      kDot,
      kAtom,
      kString,
      kChar,
      kHashParen,  // #( vector literal
      kEof,
    };
    Kind kind = Kind::kEof;
    std::string text;
    std::size_t line = 0;
  };

  Result<Token> next_token(const std::string& src, std::size_t* pos,
                           std::size_t* line);
  Result<Value> parse(const std::string& src, std::size_t* pos,
                      std::size_t* line);
  Result<Value> parse_list(const std::string& src, std::size_t* pos,
                           std::size_t* line);
  Result<Value> atom_to_value(const std::string& text);

  Engine* engine_;
  // Active parse() recursion depth; bounds host-stack use on pathological
  // nesting like ((((...)))).
  int depth_ = 0;
};

}  // namespace mv::scheme
