#include "runtime/scheme/programs.hpp"

#include <cmath>
#include <vector>

#include "support/strings.hpp"

namespace mv::scheme {

const char* benchmark_name(Bench b) noexcept {
  switch (b) {
    case Bench::kBinaryTrees: return "binary-tree-2";
    case Bench::kFannkuch: return "fannkuch-redux";
    case Bench::kFasta: return "fasta";
    case Bench::kFasta3: return "fasta-3";
    case Bench::kNBody: return "n-body";
    case Bench::kSpectralNorm: return "spectral-norm";
    case Bench::kMandelbrot: return "mandelbrot-2";
    case Bench::kCount_: break;
  }
  return "?";
}

int benchmark_test_size(Bench b) noexcept {
  switch (b) {
    case Bench::kBinaryTrees: return 6;
    case Bench::kFannkuch: return 6;
    case Bench::kFasta: return 200;
    case Bench::kFasta3: return 200;
    case Bench::kNBody: return 100;
    case Bench::kSpectralNorm: return 16;
    case Bench::kMandelbrot: return 16;
    case Bench::kCount_: break;
  }
  return 1;
}

int benchmark_bench_size(Bench b) noexcept {
  switch (b) {
    case Bench::kBinaryTrees: return 10;
    case Bench::kFannkuch: return 8;
    case Bench::kFasta: return 4000;
    case Bench::kFasta3: return 4000;
    case Bench::kNBody: return 2000;
    case Bench::kSpectralNorm: return 48;
    case Bench::kMandelbrot: return 48;
    case Bench::kCount_: break;
  }
  return 1;
}

namespace {

// Shared by fasta variants: the ALU sequence and the frequency tables.
const char kAlu[] =
    "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGGGAGGCCGAGGCGGGCGGATCACCTGAG"
    "GTCAGGAGTTCGAGACCAGCCTGGCCAACATGGTGAAACCCCGTCTCTACTAAAAATACAAAAATTAGC"
    "CGGGCGTGGTGGCGCGCGCCTGTAATCCCAGCTACTCGGGAGGCTGAGGCAGGAGAATCGCTTGAACCC"
    "GGGAGGCGGAGGTTGCAGTGAGCCGAGATCGCGCCACTGCACTCCAGCCTGGGCGACAGAGCGAGACTC"
    "CGTCTCAAAAA";

const char kFastaCommon[] = R"SCM(
(define seed 42)
(define (rand-next max)
  (set! seed (modulo (+ (* seed 3877) 29573) 139968))
  (/ (* max seed) 139968.0))
(define iub
  '((#\a . 0.27) (#\c . 0.12) (#\g . 0.12) (#\t . 0.27)
    (#\B . 0.02) (#\D . 0.02) (#\H . 0.02) (#\K . 0.02)
    (#\M . 0.02) (#\N . 0.02) (#\R . 0.02) (#\S . 0.02)
    (#\V . 0.02) (#\W . 0.02) (#\Y . 0.02)))
(define homosapiens
  '((#\a . 0.3029549426680) (#\c . 0.1979883004921)
    (#\g . 0.1975473066391) (#\t . 0.3015094502008)))
(define (make-cumulative pairs)
  (let loop ((ps pairs) (c 0.0) (acc '()))
    (if (null? ps) (reverse acc)
        (let ((c2 (+ c (cdr (car ps)))))
          (loop (cdr ps) c2 (cons (cons (car (car ps)) c2) acc))))))
(define (repeat-fasta header seq count)
  (display header) (newline)
  (let* ((len (string-length seq))
         (seq2 (string-append seq seq)))
    (let loop ((count count) (pos 0))
      (if (> count 0)
          (let ((line (min 60 count)))
            (display (substring seq2 pos (+ pos line)))
            (newline)
            (loop (- count line) (modulo (+ pos line) len)))
          #t))))
)SCM";

const char kFastaBody[] = R"SCM(
(define (select-random cum)
  (let ((r (rand-next 1.0)))
    (let loop ((ps cum))
      (if (or (null? (cdr ps)) (< r (cdr (car ps))))
          (car (car ps))
          (loop (cdr ps))))))
(define (random-fasta header cum count)
  (display header) (newline)
  (let ((line (make-string 60 #\a)))
    (let loop ((count count))
      (if (> count 0)
          (let ((m (min 60 count)))
            (do ((i 0 (+ i 1))) ((= i m))
              (string-set! line i (select-random cum)))
            (display (substring line 0 m))
            (newline)
            (loop (- count m)))
          #t))))
(repeat-fasta ">ONE Homo sapiens alu" alu (* n 2))
(random-fasta ">TWO IUB ambiguity codes" (make-cumulative iub) (* n 3))
(random-fasta ">THREE Homo sapiens frequency"
              (make-cumulative homosapiens) (* n 5))
)SCM";

// fasta-3: the lookup-table variant ("two implementations of a random DNA
// sequence generator").
const char kFasta3Body[] = R"SCM(
(define lookup-size 4096)
(define (select-char cum r)
  (let loop ((ps cum))
    (if (or (null? (cdr ps)) (< r (cdr (car ps))))
        (car (car ps))
        (loop (cdr ps)))))
(define (make-lookup cum)
  (let ((v (make-vector lookup-size #\a)))
    (do ((i 0 (+ i 1))) ((= i lookup-size) v)
      (vector-set! v i
        (select-char cum (/ (+ i 0.5) 4096.0))))))
(define (select-lookup table)
  (let ((r (rand-next 1.0)))
    (vector-ref table (inexact->exact (floor (* r 4096.0))))))
(define (random-fasta header table count)
  (display header) (newline)
  (let ((line (make-string 60 #\a)))
    (let loop ((count count))
      (if (> count 0)
          (let ((m (min 60 count)))
            (do ((i 0 (+ i 1))) ((= i m))
              (string-set! line i (select-lookup table)))
            (display (substring line 0 m))
            (newline)
            (loop (- count m)))
          #t))))
(repeat-fasta ">ONE Homo sapiens alu" alu (* n 2))
(random-fasta ">TWO IUB ambiguity codes" (make-lookup (make-cumulative iub))
              (* n 3))
(random-fasta ">THREE Homo sapiens frequency"
              (make-lookup (make-cumulative homosapiens)) (* n 5))
)SCM";

const char kBinaryTreesBody[] = R"SCM(
(define min-depth 4)
(define max-depth (max (+ min-depth 2) n))
(define stretch-depth (+ max-depth 1))
(define (make-tree d)
  (if (= d 0)
      (cons #f #f)
      (cons (make-tree (- d 1)) (make-tree (- d 1)))))
(define (check-tree t)
  (if (car t)
      (+ 1 (check-tree (car t)) (check-tree (cdr t)))
      1))
(display "stretch tree of depth ") (display stretch-depth)
(display " check: ") (display (check-tree (make-tree stretch-depth)))
(newline)
(define long-lived (make-tree max-depth))
(do ((d min-depth (+ d 2))) ((> d max-depth))
  (let ((iters (expt 2 (+ (- max-depth d) min-depth))))
    (let loop ((i 0) (c 0))
      (if (= i iters)
          (begin
            (display iters) (display " trees of depth ") (display d)
            (display " check: ") (display c) (newline))
          (loop (+ i 1) (+ c (check-tree (make-tree d))))))))
(display "long lived tree of depth ") (display max-depth)
(display " check: ") (display (check-tree long-lived)) (newline)
)SCM";

const char kFannkuchBody[] = R"SCM(
(define (fannkuch n)
  (let ((perm (make-vector n 0))
        (perm1 (make-vector n 0))
        (count (make-vector n 0))
        (flips 0) (maxflips 0) (checksum 0) (perm-count 0) (r n))
    (do ((i 0 (+ i 1))) ((= i n)) (vector-set! perm1 i i))
    (let loop ()
      (let rloop ()
        (when (> r 1)
          (vector-set! count (- r 1) r)
          (set! r (- r 1))
          (rloop)))
      (do ((i 0 (+ i 1))) ((= i n)) (vector-set! perm i (vector-ref perm1 i)))
      (set! flips 0)
      (let fliploop ((k (vector-ref perm 0)))
        (unless (= k 0)
          (let rev ((i 0) (j k))
            (when (< i j)
              (let ((t (vector-ref perm i)))
                (vector-set! perm i (vector-ref perm j))
                (vector-set! perm j t)
                (rev (+ i 1) (- j 1)))))
          (set! flips (+ flips 1))
          (fliploop (vector-ref perm 0))))
      (when (> flips maxflips) (set! maxflips flips))
      (set! checksum
            (if (even? perm-count) (+ checksum flips) (- checksum flips)))
      (set! perm-count (+ perm-count 1))
      (let next ()
        (if (= r n)
            #f
            (let ((p0 (vector-ref perm1 0)))
              (do ((i 0 (+ i 1))) ((= i r))
                (vector-set! perm1 i (vector-ref perm1 (+ i 1))))
              (vector-set! perm1 r p0)
              (vector-set! count r (- (vector-ref count r) 1))
              (if (> (vector-ref count r) 0)
                  (loop)
                  (begin (set! r (+ r 1)) (next)))))))
    (display checksum) (newline)
    (display "Pfannkuchen(") (display n) (display ") = ")
    (display maxflips) (newline)))
(fannkuch n)
)SCM";

const char kMandelbrotBody[] = R"SCM(
(define limit 50)
(define count 0)
(do ((y 0 (+ y 1))) ((= y n))
  (do ((x 0 (+ x 1))) ((= x n))
    (let ((cr (- (/ (* 2.0 x) n) 1.5))
          (ci (- (/ (* 2.0 y) n) 1.0)))
      (let loop ((zr 0.0) (zi 0.0) (i 0))
        (cond ((= i limit) (set! count (+ count 1)))
              ((> (+ (* zr zr) (* zi zi)) 4.0) #f)
              (else (loop (+ (- (* zr zr) (* zi zi)) cr)
                          (+ (* 2.0 zr zi) ci)
                          (+ i 1))))))))
(display "P4") (newline)
(display n) (display " ") (display n) (newline)
(display "inside: ") (display count) (newline)
)SCM";

const char kSpectralNormBody[] = R"SCM(
(define (A i j)
  (/ 1.0 (+ (* (+ i j) (+ i j 1) 0.5) i 1.0)))
(define (mul-Av v out)
  (do ((i 0 (+ i 1))) ((= i n))
    (let loop ((j 0) (sum 0.0))
      (if (= j n)
          (vector-set! out i sum)
          (loop (+ j 1) (+ sum (* (A i j) (vector-ref v j))))))))
(define (mul-Atv v out)
  (do ((i 0 (+ i 1))) ((= i n))
    (let loop ((j 0) (sum 0.0))
      (if (= j n)
          (vector-set! out i sum)
          (loop (+ j 1) (+ sum (* (A j i) (vector-ref v j))))))))
(define (mul-AtAv v out tmp)
  (mul-Av v tmp)
  (mul-Atv tmp out))
(define u (make-vector n 1.0))
(define v (make-vector n 0.0))
(define tmp (make-vector n 0.0))
(do ((i 0 (+ i 1))) ((= i 10))
  (mul-AtAv u v tmp)
  (mul-AtAv v u tmp))
(define vBv
  (let loop ((i 0) (sum 0.0))
    (if (= i n) sum
        (loop (+ i 1) (+ sum (* (vector-ref u i) (vector-ref v i)))))))
(define vv
  (let loop ((i 0) (sum 0.0))
    (if (= i n) sum
        (loop (+ i 1) (+ sum (* (vector-ref v i) (vector-ref v i)))))))
(display (sqrt (/ vBv vv))) (newline)
)SCM";

// n-body constants are emitted as exact literals computed host-side so the
// Scheme run and the C++ reference see bit-identical doubles.
struct Body {
  double x, y, z, vx, vy, vz, mass;
};

constexpr double kPi = 3.141592653589793;
constexpr double kSolarMass = 4 * kPi * kPi;
constexpr double kDaysPerYear = 365.24;

std::vector<Body> initial_bodies() {
  return {
      // Sun (velocity fixed by momentum offset below).
      {0, 0, 0, 0, 0, 0, kSolarMass},
      // Jupiter
      {4.84143144246472090e+00, -1.16032004402742839e+00,
       -1.03622044471123109e-01, 1.66007664274403694e-03 * kDaysPerYear,
       7.69901118419740425e-03 * kDaysPerYear,
       -6.90460016972063023e-05 * kDaysPerYear,
       9.54791938424326609e-04 * kSolarMass},
      // Saturn
      {8.34336671824457987e+00, 4.12479856412430479e+00,
       -4.03523417114321381e-01, -2.76742510726862411e-03 * kDaysPerYear,
       4.99852801234917238e-03 * kDaysPerYear,
       2.30417297573763929e-05 * kDaysPerYear,
       2.85885980666130812e-04 * kSolarMass},
      // Uranus
      {1.28943695621391310e+01, -1.51111514016986312e+01,
       -2.23307578892655734e-01, 2.96460137564761618e-03 * kDaysPerYear,
       2.37847173959480950e-03 * kDaysPerYear,
       -2.96589568540237556e-05 * kDaysPerYear,
       4.36624404335156298e-05 * kSolarMass},
      // Neptune
      {1.53796971148509165e+01, -2.59193146099879641e+01,
       1.79258772950371181e-01, 2.68067772490389322e-03 * kDaysPerYear,
       1.62824170038242295e-03 * kDaysPerYear,
       -9.51592254519715870e-05 * kDaysPerYear,
       5.15138902046611451e-05 * kSolarMass},
  };
}

void offset_momentum(std::vector<Body>& bodies) {
  double px = 0, py = 0, pz = 0;
  for (const Body& b : bodies) {
    px += b.vx * b.mass;
    py += b.vy * b.mass;
    pz += b.vz * b.mass;
  }
  bodies[0].vx = -px / kSolarMass;
  bodies[0].vy = -py / kSolarMass;
  bodies[0].vz = -pz / kSolarMass;
}

std::string nbody_source(int steps) {
  std::vector<Body> bodies = initial_bodies();
  offset_momentum(bodies);
  std::string src = strfmt("(define steps %d)\n", steps);
  src += "(define bodies (vector\n";
  for (const Body& b : bodies) {
    src += strfmt("  (vector %.17g %.17g %.17g %.17g %.17g %.17g %.17g)\n",
                  b.x, b.y, b.z, b.vx, b.vy, b.vz, b.mass);
  }
  src += "))\n";
  src += R"SCM(
(define nbodies (vector-length bodies))
(define (bref i k) (vector-ref (vector-ref bodies i) k))
(define (bset! i k v) (vector-set! (vector-ref bodies i) k v))
(define (energy)
  (let loop ((i 0) (e 0.0))
    (if (= i nbodies) e
        (let ((e1 (+ e (* 0.5 (bref i 6)
                          (+ (* (bref i 3) (bref i 3))
                             (* (bref i 4) (bref i 4))
                             (* (bref i 5) (bref i 5)))))))
          (let inner ((j (+ i 1)) (e2 e1))
            (if (= j nbodies)
                (loop (+ i 1) e2)
                (let* ((dx (- (bref i 0) (bref j 0)))
                       (dy (- (bref i 1) (bref j 1)))
                       (dz (- (bref i 2) (bref j 2)))
                       (dist (sqrt (+ (* dx dx) (* dy dy) (* dz dz)))))
                  (inner (+ j 1)
                         (- e2 (/ (* (bref i 6) (bref j 6)) dist))))))))))
(define (advance dt)
  (do ((i 0 (+ i 1))) ((= i nbodies))
    (do ((j (+ i 1) (+ j 1))) ((= j nbodies))
      (let* ((dx (- (bref i 0) (bref j 0)))
             (dy (- (bref i 1) (bref j 1)))
             (dz (- (bref i 2) (bref j 2)))
             (d2 (+ (* dx dx) (* dy dy) (* dz dz)))
             (mag (/ dt (* d2 (sqrt d2)))))
        (bset! i 3 (- (bref i 3) (* dx (bref j 6) mag)))
        (bset! i 4 (- (bref i 4) (* dy (bref j 6) mag)))
        (bset! i 5 (- (bref i 5) (* dz (bref j 6) mag)))
        (bset! j 3 (+ (bref j 3) (* dx (bref i 6) mag)))
        (bset! j 4 (+ (bref j 4) (* dy (bref i 6) mag)))
        (bset! j 5 (+ (bref j 5) (* dz (bref i 6) mag))))))
  (do ((i 0 (+ i 1))) ((= i nbodies))
    (bset! i 0 (+ (bref i 0) (* dt (bref i 3))))
    (bset! i 1 (+ (bref i 1) (* dt (bref i 4))))
    (bset! i 2 (+ (bref i 2) (* dt (bref i 5))))))
(display (energy)) (newline)
(do ((s 0 (+ s 1))) ((= s steps))
  (advance 0.01))
(display (energy)) (newline)
)SCM";
  return src;
}

}  // namespace

std::string benchmark_source(Bench b, int n) {
  const std::string header = strfmt("(define n %d)\n", n);
  const std::string alu_def = std::string("(define alu \"") + kAlu + "\")\n";
  switch (b) {
    case Bench::kBinaryTrees: return header + kBinaryTreesBody;
    case Bench::kFannkuch: return header + kFannkuchBody;
    case Bench::kFasta: return header + alu_def + kFastaCommon + kFastaBody;
    case Bench::kFasta3: return header + alu_def + kFastaCommon + kFasta3Body;
    case Bench::kNBody: return nbody_source(n);
    case Bench::kSpectralNorm: return header + kSpectralNormBody;
    case Bench::kMandelbrot: return header + kMandelbrotBody;
    case Bench::kCount_: break;
  }
  return "";
}

Status install_boot_files(ros::FileSystem& fs) {
  MV_RETURN_IF_ERROR(fs.mkdir("/", "collects"));
  MV_RETURN_IF_ERROR(fs.mkdir("/", "collects/vessel"));
  // Real library code the engine loads through open/read/close at startup —
  // this is what produces the Racket-like boot syscall histogram (Fig 11).
  MV_RETURN_IF_ERROR(fs.write_file(
      "/collects/vessel/boot.vsl",
      ";; Vessel boot collection\n"
      "(define *vessel-version* \"1.0\")\n"
      "(define (void? x) (eq? x (void)))\n"));
  MV_RETURN_IF_ERROR(fs.write_file(
      "/collects/vessel/base.vsl",
      "(define (identity x) x)\n"
      "(define (const x) (lambda args x))\n"
      "(define (compose f g) (lambda (x) (f (g x))))\n"));
  MV_RETURN_IF_ERROR(fs.write_file(
      "/collects/vessel/list.vsl",
      "(define (take l n) (if (= n 0) '() (cons (car l) (take (cdr l) (- n 1)))))\n"
      "(define (drop l n) (if (= n 0) l (drop (cdr l) (- n 1))))\n"
      "(define (count pred l)\n"
      "  (if (null? l) 0 (+ (if (pred (car l)) 1 0) (count pred (cdr l)))))\n"));
  MV_RETURN_IF_ERROR(fs.write_file(
      "/collects/vessel/string.vsl",
      "(define (string-null? s) (= (string-length s) 0))\n"));
  MV_RETURN_IF_ERROR(fs.write_file(
      "/collects/vessel/math.vsl",
      "(define pi 3.141592653589793)\n"
      "(define (square x) (* x x))\n"
      "(define (cube x) (* x x x))\n"));
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Reference implementations
// ---------------------------------------------------------------------------

namespace reference {

std::int64_t binary_trees_check(int depth) {
  return (std::int64_t{1} << (depth + 1)) - 1;
}

FannkuchResult fannkuch(int n) {
  std::vector<int> perm(n), perm1(n), count(n);
  for (int i = 0; i < n; ++i) perm1[i] = i;
  std::int64_t checksum = 0;
  int max_flips = 0;
  std::int64_t perm_count = 0;
  int r = n;
  for (;;) {
    while (r > 1) {
      count[r - 1] = r;
      --r;
    }
    perm = perm1;
    int flips = 0;
    for (int k = perm[0]; k != 0; k = perm[0]) {
      for (int i = 0, j = k; i < j; ++i, --j) std::swap(perm[i], perm[j]);
      ++flips;
    }
    max_flips = std::max(max_flips, flips);
    checksum += (perm_count % 2 == 0) ? flips : -flips;
    ++perm_count;
    for (;;) {
      if (r == n) return FannkuchResult{checksum, max_flips};
      const int p0 = perm1[0];
      for (int i = 0; i < r; ++i) perm1[i] = perm1[i + 1];
      perm1[r] = p0;
      if (--count[r] > 0) break;
      ++r;
    }
  }
}

double spectral_norm(int n) {
  const auto A = [](int i, int j) {
    return 1.0 / ((i + j) * (i + j + 1) * 0.5 + i + 1.0);
  };
  std::vector<double> u(n, 1.0), v(n, 0.0), tmp(n, 0.0);
  const auto mul_Av = [&](const std::vector<double>& x,
                          std::vector<double>& out) {
    for (int i = 0; i < n; ++i) {
      double sum = 0.0;
      for (int j = 0; j < n; ++j) sum += A(i, j) * x[j];
      out[i] = sum;
    }
  };
  const auto mul_Atv = [&](const std::vector<double>& x,
                           std::vector<double>& out) {
    for (int i = 0; i < n; ++i) {
      double sum = 0.0;
      for (int j = 0; j < n; ++j) sum += A(j, i) * x[j];
      out[i] = sum;
    }
  };
  for (int it = 0; it < 10; ++it) {
    mul_Av(u, tmp);
    mul_Atv(tmp, v);
    mul_Av(v, tmp);
    mul_Atv(tmp, u);
  }
  double vBv = 0.0, vv = 0.0;
  for (int i = 0; i < n; ++i) {
    vBv += u[i] * v[i];
    vv += v[i] * v[i];
  }
  return std::sqrt(vBv / vv);
}

NBodyResult nbody(int steps) {
  std::vector<Body> bodies = initial_bodies();
  offset_momentum(bodies);
  const auto energy = [&bodies]() {
    double e = 0.0;
    const int n = static_cast<int>(bodies.size());
    for (int i = 0; i < n; ++i) {
      const Body& a = bodies[static_cast<std::size_t>(i)];
      e += 0.5 * a.mass * (a.vx * a.vx + a.vy * a.vy + a.vz * a.vz);
      for (int j = i + 1; j < n; ++j) {
        const Body& b = bodies[static_cast<std::size_t>(j)];
        const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
        e -= a.mass * b.mass / std::sqrt(dx * dx + dy * dy + dz * dz);
      }
    }
    return e;
  };
  NBodyResult result{};
  result.initial_energy = energy();
  const double dt = 0.01;
  const int n = static_cast<int>(bodies.size());
  for (int s = 0; s < steps; ++s) {
    for (int i = 0; i < n; ++i) {
      Body& a = bodies[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < n; ++j) {
        Body& b = bodies[static_cast<std::size_t>(j)];
        const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
        const double d2 = dx * dx + dy * dy + dz * dz;
        const double mag = dt / (d2 * std::sqrt(d2));
        a.vx -= dx * b.mass * mag;
        a.vy -= dy * b.mass * mag;
        a.vz -= dz * b.mass * mag;
        b.vx += dx * a.mass * mag;
        b.vy += dy * a.mass * mag;
        b.vz += dz * a.mass * mag;
      }
    }
    for (Body& b : bodies) {
      b.x += dt * b.vx;
      b.y += dt * b.vy;
      b.z += dt * b.vz;
    }
  }
  result.final_energy = energy();
  return result;
}

std::int64_t mandelbrot_inside(int n) {
  std::int64_t count = 0;
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      const double cr = 2.0 * x / n - 1.5;
      const double ci = 2.0 * y / n - 1.0;
      double zr = 0.0, zi = 0.0;
      int i = 0;
      for (; i < 50; ++i) {
        if (zr * zr + zi * zi > 4.0) break;
        const double nzr = zr * zr - zi * zi + cr;
        zi = 2.0 * zr * zi + ci;
        zr = nzr;
      }
      if (i == 50) ++count;
    }
  }
  return count;
}

std::string fasta(int n) {
  std::string out;
  // repeat-fasta
  out += ">ONE Homo sapiens alu\n";
  {
    const std::string seq = kAlu;
    const std::string seq2 = seq + seq;
    const int len = static_cast<int>(seq.size());
    int count = n * 2;
    int pos = 0;
    while (count > 0) {
      const int line = std::min(60, count);
      out += seq2.substr(static_cast<std::size_t>(pos),
                         static_cast<std::size_t>(line));
      out += '\n';
      count -= line;
      pos = (pos + line) % len;
    }
  }
  // random-fasta — must match the Scheme arithmetic exactly.
  std::int64_t seed = 42;
  const auto rand_next = [&seed](double max) {
    seed = (seed * 3877 + 29573) % 139968;
    return max * static_cast<double>(seed) / 139968.0;
  };
  struct Freq {
    char ch;
    double p;
  };
  const std::vector<Freq> iub = {
      {'a', 0.27}, {'c', 0.12}, {'g', 0.12}, {'t', 0.27}, {'B', 0.02},
      {'D', 0.02}, {'H', 0.02}, {'K', 0.02}, {'M', 0.02}, {'N', 0.02},
      {'R', 0.02}, {'S', 0.02}, {'V', 0.02}, {'W', 0.02}, {'Y', 0.02}};
  const std::vector<Freq> homo = {{'a', 0.3029549426680},
                                  {'c', 0.1979883004921},
                                  {'g', 0.1975473066391},
                                  {'t', 0.3015094502008}};
  const auto cumulative = [](const std::vector<Freq>& fs) {
    std::vector<Freq> out_fs = fs;
    double c = 0.0;
    for (Freq& f : out_fs) {
      c += f.p;
      f.p = c;
    }
    return out_fs;
  };
  const auto random_section = [&](const char* header,
                                  const std::vector<Freq>& cum, int count) {
    out += header;
    out += '\n';
    while (count > 0) {
      const int m = std::min(60, count);
      for (int i = 0; i < m; ++i) {
        const double r = rand_next(1.0);
        char ch = cum.back().ch;
        for (const Freq& f : cum) {
          if (r < f.p) {
            ch = f.ch;
            break;
          }
        }
        out += ch;
      }
      out += '\n';
      count -= m;
    }
  };
  random_section(">TWO IUB ambiguity codes", cumulative(iub), n * 3);
  random_section(">THREE Homo sapiens frequency", cumulative(homo), n * 5);
  return out;
}

}  // namespace reference
}  // namespace mv::scheme
