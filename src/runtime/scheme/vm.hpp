#pragma once

// Execution state for the Vessel bytecode VM (dispatch loop in vm.cpp,
// entered through Engine). One VmContext exists per fiber, mirroring the
// heap's per-fiber shadow root stacks: interpreter threads interleave at
// syscall block points, so each needs its own operand stack and frame
// chain. Every context is registered as a GC root through the engine's
// extra_root_marker hook.

#include <cstdint>
#include <vector>

#include "runtime/scheme/compile.hpp"
#include "runtime/scheme/value.hpp"

namespace mv::scheme {

struct VmFrame {
  const Proto* proto = nullptr;
  Cell* env = nullptr;      // flat slot frame (kEnv cell, slots in vec)
  Cell* closure = nullptr;  // callee cell; null for toplevel frames
  std::uint32_t ip = 0;
  std::size_t stack_base = 0;  // operand-stack height at entry
  bool poolable = false;       // !proto->frame_escapes: recycled on return
};

struct VmContext {
  std::vector<Value> stack;
  std::vector<VmFrame> frames;
  std::uint64_t max_frames_depth = 0;
};

}  // namespace mv::scheme
