#pragma once

// The Vessel Scheme engine: the paper's Racket stand-in. A complete
// interpreter (reader, evaluator with proper tail calls, numeric/string/
// vector/list builtins) embedded into a C program exactly the way the
// paper's port embeds the Racket engine: construct with a SysIface, call
// init(), then eval strings / load files / run the REPL. Because every OS
// interaction goes through SysIface, the engine runs unmodified in Native,
// Virtual, and Multiverse (HRT) configurations.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ros/guest.hpp"
#include "runtime/scheme/compile.hpp"
#include "runtime/scheme/gc.hpp"
#include "runtime/scheme/reader.hpp"
#include "runtime/scheme/value.hpp"
#include "runtime/scheme/vm.hpp"
#include "support/result.hpp"

namespace mv::scheme {

class Engine {
 public:
  // Which execution engine runs toplevel forms. The tree-walking
  // interpreter is the reference semantics; the bytecode VM must produce
  // byte-identical output (enforced by the twin-run tests).
  enum class Exec {
    kInterpreter,
    kBytecodeVm,
  };

  struct Config {
    Heap::Config heap;
    Exec exec = Exec::kInterpreter;
    // Guest compute charged per evaluator step (batched).
    std::uint64_t eval_cycles = 150;
    // Guest compute charged per VM instruction. VM instruction counts track
    // interpreter step counts roughly 1:1 over the fig13 suite, so the
    // eval_cycles/vm_insn_cycles ratio is the modeled speedup.
    std::uint64_t vm_insn_cycles = 35;
    // The runtime's cooperative scheduler tick: every N evaluator steps the
    // engine polls for events and checks timers (Racket's thread scheduler
    // does the same; this produces Fig 12's poll/getrusage/timer traffic).
    std::uint64_t tick_every_evals = 32768;
    std::uint64_t timer_us = 20000;  // itimer period (SIGALRM cadence)
    bool install_timer = true;
    bool load_boot_files = true;  // stat/open/read/close the collection tree
  };

  Engine(ros::SysIface& sys, Config config);
  explicit Engine(ros::SysIface& sys) : Engine(sys, Config{}) {}

  // Engine bring-up: GC arena + barrier handler, SIGALRM + itimer, boot
  // file loading, prelude evaluation.
  Status init();

  // --- evaluation --------------------------------------------------------
  Result<Value> eval(Value expr, Cell* env);
  // Evaluate one toplevel form through the configured engine (interpreter
  // or compile + VM).
  Result<Value> eval_toplevel(Value form);
  // Non-tail application (used by apply/map and embedding code).
  Result<Value> apply_value(Value fn, std::vector<Value>& args);
  // Evaluate all forms; returns the last result.
  Result<Value> eval_string(const std::string& src);
  // Convenience for tests: evaluate and render with display semantics.
  Result<std::string> eval_to_string(const std::string& src);
  Status load_path(const std::string& path);

  // Interactive REPL over guest stdin/stdout; returns the exit code.
  int repl();

  // --- symbols --------------------------------------------------------------
  SymId intern(const std::string& name);
  [[nodiscard]] const std::string& sym_name(SymId id) const {
    return sym_names_.at(id);
  }

  // --- allocation helpers ------------------------------------------------------
  Result<Value> cons(Value car, Value cdr);
  Result<Value> make_string(std::string s);
  Result<Value> make_vector(std::size_t n, Value fill);
  Result<Value> make_builtin(std::string name, BuiltinFn fn);
  Result<Cell*> make_env(Cell* parent);
  // Build a Scheme list from a host vector (reverse-safe, rooted).
  Result<Value> make_list(const std::vector<Value>& items);

  // --- environments ---------------------------------------------------------------
  Status env_define(Cell* env, SymId sym, Value v);
  Status env_set(Cell* env, SymId sym, Value v);
  Result<Value> env_lookup(Cell* env, SymId sym);
  void define_global(const std::string& name, Value v);
  void define_builtin(const std::string& name, BuiltinFn fn);

  // --- printing --------------------------------------------------------------------
  [[nodiscard]] std::string to_display(const Value& v) const;
  [[nodiscard]] std::string to_write(const Value& v) const;

  // --- buffered guest output ----------------------------------------------------------
  Status out(const std::string& text);
  Status flush();

  // --- interpreter threads ---------------------------------------------------
  // (spawn-thread thunk) creates a runtime thread through the guest pthread
  // layer — in native mode a Linux clone; hybridized, a nested AeroKernel
  // thread ("legacy threading functionality automatically maps to the
  // corresponding AeroKernel functionality", Sec 3.3). Each interpreter
  // thread runs with its own SysIface; sys() returns the current fiber's.
  class ThreadIfaceScope {
   public:
    ThreadIfaceScope(Engine& engine, ros::SysIface& iface);
    ~ThreadIfaceScope();
    ThreadIfaceScope(const ThreadIfaceScope&) = delete;
    ThreadIfaceScope& operator=(const ThreadIfaceScope&) = delete;

   private:
    Engine* engine_;
  };

  // Start `thunk` (a zero-argument procedure) on a new runtime thread;
  // returns the guest tid. The thunk stays GC-rooted until the thread ends.
  Result<int> spawn_interpreter_thread(Value thunk);

  // --- accessors -----------------------------------------------------------------------
  [[nodiscard]] Heap& heap() noexcept { return heap_; }
  [[nodiscard]] ros::SysIface& sys();
  [[nodiscard]] std::uint64_t eval_steps() const noexcept { return evals_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] Cell* globals_env() noexcept { return global_env_; }
  // Proto table for the bytecode compiler/VM. unique_ptr elements keep
  // Proto addresses stable across nested compilation (a `load` during VM
  // execution appends protos while frames hold pointers into the table).
  [[nodiscard]] std::vector<std::unique_ptr<Proto>>& protos() noexcept {
    return protos_;
  }
  // Deepest frame chain any VM context has reached (tail-call tests).
  [[nodiscard]] std::uint64_t vm_max_frame_depth() const noexcept;

 private:
  friend class Reader;

  void register_builtins();           // builtins.cpp
  Status load_boot_collection();      // the startup syscall profile
  Status eval_prelude();
  void tick();                        // scheduler tick (poll/getrusage)
  void count_step();
  void count_vm_step();               // per-instruction accounting (vm.cpp)

  // Bytecode VM internals (vm.cpp).
  VmContext& current_vm_context();
  Result<Value> vm_run(VmContext& ctx, std::size_t frame_floor);
  Result<Value> run_toplevel_proto(int proto_idx);
  Result<Value> vm_apply(Value fn, std::vector<Value>& args);
  // Call setup shared by kCall dispatch and vm_apply: the operand stack
  // holds [closure, arg0..argN-1]; replaces them with a new frame record.
  Status vm_push_call(VmContext& ctx, std::size_t nargs);

  // Evaluator internals (eval.cpp).
  Result<Value> eval_quasiquote(Value tmpl, Cell* env, int depth);
  Result<Value> eval_args(Value list, Cell* env, std::vector<Value>* out);
  Result<Value> apply_closure_env(Cell* closure, std::vector<Value>& args,
                                  Cell** env_out);
  Result<Value> eval_body_tail(Value body, Cell* env, Value* tail_expr,
                               Cell** tail_env);

  ros::SysIface* sys_;
  Config config_;
  Heap heap_;
  Reader reader_{*this};
  std::unordered_map<std::string, SymId> sym_ids_;
  std::vector<std::string> sym_names_;
  std::unordered_map<SymId, Value> globals_;
  // Per-fiber SysIface bindings for interpreter threads.
  std::vector<std::pair<const Fiber*, ros::SysIface*>> thread_ifaces_;
  // Thunks of live interpreter threads (GC roots until the thread finishes).
  std::unordered_map<int, Value> thread_thunks_;
  int next_thunk_id_ = 1;
  Cell* global_env_ = nullptr;  // an env cell chaining to the global table
  std::string out_buf_;
  std::uint64_t evals_ = 0;
  std::uint64_t pending_charge_ = 0;
  std::uint64_t next_tick_ = 0;
  std::uint64_t ticks_ = 0;
  bool initialized_ = false;

  // Bytecode engine state. One VmContext per fiber (interpreter threads
  // interleave at syscall block points), same discipline as the heap's
  // per-fiber shadow root stacks.
  std::vector<std::unique_ptr<Proto>> protos_;
  std::vector<std::pair<const Fiber*, std::unique_ptr<VmContext>>>
      vm_contexts_;
  // Tick cadence in VM instructions, scaled so wall-clock poll/timer
  // traffic matches the interpreter's (tick_every_evals * eval_cycles
  // guest cycles between ticks in both engines).
  std::uint64_t vm_tick_every_ = 1;

  // Cached special-form symbols.
  SymId s_quote_, s_if_, s_define_, s_set_, s_lambda_, s_begin_, s_let_,
      s_let_star_, s_letrec_, s_cond_, s_case_, s_else_, s_and_, s_or_,
      s_when_, s_unless_, s_do_, s_named_lambda_, s_quasiquote_, s_unquote_,
      s_arrow_;
};

// Public helper: the "Racket port" main — an engine embedded in a C program
// (the paper: "an instance of the Racket engine embedded into a simple C
// program ... launches a pthread that in turn starts the engine"), runnable
// as REPL (no args) or batch (program text).
int vessel_main(ros::SysIface& sys, const std::string& batch_source,
                bool use_launcher_thread = true,
                const Engine::Config& config = {});

}  // namespace mv::scheme
