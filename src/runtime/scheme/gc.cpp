#include "runtime/scheme/gc.hpp"

#include <algorithm>

#include "hw/phys_mem.hpp"
#include "support/log.hpp"
#include "support/strings.hpp"

namespace mv::scheme {

using hw::kPageSize;

namespace {
// The heap needs its own view of the SIGSEGV handler so nested uses (the
// engine installs exactly one heap) can find the right Heap. A single
// process-wide heap pointer suffices for the simulator.
thread_local Heap* g_active_heap = nullptr;
}  // namespace

Heap::Heap(ros::SysIface& sys, Config config) : sys_(&sys), config_(config) {}

std::vector<Value>& Heap::current_stack() {
  const Fiber* fiber = Fiber::current();
  if (current_stack_hint_ < root_stacks_.size() &&
      root_stacks_[current_stack_hint_].first == fiber) {
    return root_stacks_[current_stack_hint_].second;
  }
  for (std::size_t i = 0; i < root_stacks_.size(); ++i) {
    if (root_stacks_[i].first == fiber) {
      current_stack_hint_ = i;
      return root_stacks_[i].second;
    }
  }
  root_stacks_.emplace_back(fiber, std::vector<Value>{});
  current_stack_hint_ = root_stacks_.size() - 1;
  return root_stacks_.back().second;
}

Status Heap::init() {
  if (initialized_) return Status::ok();
  g_active_heap = this;
  // rt_sigaction: the barrier handler. On a write fault inside a protected
  // chunk the handler unprotects that chunk and records it dirty.
  barrier_handler_ = [](int, std::uint64_t fault_addr, ros::SysIface& hsys) {
    Heap* heap = g_active_heap;
    if (heap == nullptr) return;
    for (auto& chunk : heap->chunks_) {
      if (fault_addr >= chunk->guest_base &&
          fault_addr < chunk->guest_base + heap->config_.chunk_bytes) {
        (void)hsys.mprotect(chunk->guest_base, heap->config_.chunk_bytes,
                            ros::kProtRead | ros::kProtWrite);
        chunk->protected_ = false;
        ++heap->stats_.barrier_hits;
        return;
      }
    }
    // Not a heap address: genuine crash — re-raise by leaving the mapping
    // untouched (the retried access will fail again).
  };
  MV_RETURN_IF_ERROR(sys().sigaction(ros::kSigSegv, barrier_handler_));
  // Premap an initial arena then release part of it after the boot-time
  // sizing pass, as real runtimes do at startup (the mmap/munmap storm that
  // dominates Fig 11). Both storms go through the batch interface: in native
  // mode that is the same sequential syscall loop, in hybrid mode the whole
  // storm is staged in the channel ring and blocks once.
  std::vector<ros::SysReq> maps(
      static_cast<std::size_t>(std::max(config_.startup_chunks, 0)));
  for (ros::SysReq& req : maps) {
    req.nr = ros::SysNr::kMmap;
    req.args = {0, config_.chunk_bytes, ros::kProtRead | ros::kProtWrite,
                ros::kMapPrivate | ros::kMapAnonymous, 0, 0};
  }
  for (Result<std::uint64_t>& base : sys().syscall_batch(maps)) {
    if (!base) return base.status();
    add_chunk(*base);
    ++stats_.chunks_mapped;
  }
  const std::size_t trim = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(config_.startup_trim, 0)),
      chunks_.size());
  std::vector<ros::SysReq> unmaps;
  unmaps.reserve(trim);
  for (std::size_t i = 0; i < trim; ++i) {
    // Same release order as the sequential pass: newest chunk first.
    const Chunk& chunk = *chunks_[chunks_.size() - 1 - i];
    unmaps.push_back(ros::SysReq{ros::SysNr::kMunmap,
                                 {chunk.guest_base, config_.chunk_bytes}});
  }
  (void)sys().syscall_batch(unmaps);
  for (std::size_t i = 0; i < trim; ++i) {
    chunks_.pop_back();
    ++stats_.chunks_unmapped;
  }
  initialized_ = true;
  return Status::ok();
}

Status Heap::map_chunk() {
  auto base = sys().mmap(0, config_.chunk_bytes,
                         ros::kProtRead | ros::kProtWrite,
                         ros::kMapPrivate | ros::kMapAnonymous);
  if (!base) return base.status();
  add_chunk(*base);
  ++stats_.chunks_mapped;
  return Status::ok();
}

void Heap::add_chunk(std::uint64_t guest_base) {
  auto chunk = std::make_unique<Chunk>();
  chunk->guest_base = guest_base;
  const std::uint64_t n = cells_per_chunk();
  chunk->cells.reserve(n);
  chunk->free_list.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    auto cell = std::make_unique<Cell>();
    cell->guest_addr = guest_base + i * config_.cell_bytes;
    chunk->free_list.push_back(cell.get());
    chunk->cells.push_back(std::move(cell));
  }
  chunks_.push_back(std::move(chunk));
}

void Heap::unmap_chunk(std::size_t index) {
  Chunk& chunk = *chunks_[index];
  (void)sys().munmap(chunk.guest_base, config_.chunk_bytes);
  ++stats_.chunks_unmapped;
  chunks_.erase(chunks_.begin() + static_cast<long>(index));
}

Heap::Chunk* Heap::chunk_of(const Cell* cell) {
  for (auto& chunk : chunks_) {
    if (cell->guest_addr >= chunk->guest_base &&
        cell->guest_addr < chunk->guest_base + config_.chunk_bytes) {
      return chunk.get();
    }
  }
  return nullptr;
}

Result<Cell*> Heap::alloc(Cell::Type type) {
  if (!initialized_) MV_RETURN_IF_ERROR(init());
  if (since_gc_ >= config_.gc_allocation_trigger && !in_gc_) {
    collect();
  }
  // Allocate from an unprotected chunk (the nursery): protected chunks hold
  // old-space survivors and are only written through the barrier.
  Chunk* target = nullptr;
  for (auto& chunk : chunks_) {
    if (!chunk->free_list.empty() && !chunk->protected_) {
      target = chunk.get();
      break;
    }
  }
  if (target == nullptr) {
    MV_RETURN_IF_ERROR(map_chunk());
    target = chunks_.back().get();
  }
  Cell* cell = target->free_list.back();
  target->free_list.pop_back();
  cell->reset();
  cell->type = type;
  ++target->live;
  ++since_gc_;
  ++stats_.cells_allocated;
  ++stats_.live_cells;

  // First touch of each page in the chunk demand-faults, exactly like a real
  // allocator walking a fresh arena.
  const std::uint64_t page_index =
      (cell->guest_addr - target->guest_base) / kPageSize;
  if ((target->touched_pages & (1ull << page_index)) == 0) {
    target->touched_pages |= 1ull << page_index;
    (void)sys().mem_touch(cell->guest_addr, hw::Access::kWrite);
  }
  return cell;
}

int Heap::pool_class(std::size_t slots) {
  if (slots <= 8) return 0;
  if (slots <= 16) return 1;
  if (slots <= 32) return 2;
  if (slots <= 64) return 3;
  return -1;
}

Result<Cell*> Heap::alloc_env_frame(std::size_t slots) {
  const int cls = pool_class(slots);
  if (cls >= 0 && !env_pools_[cls].empty()) {
    // Pool hit: no allocation pressure, no trigger advance — this is the
    // mechanism that drops fannkuch's collection count to the paper's shape.
    Cell* frame = env_pools_[cls].back();
    env_pools_[cls].pop_back();
    frame->type = Cell::Type::kEnv;
    ++stats_.env_reuses;
    ++stats_.live_cells;
    return frame;
  }
  // Pool miss (or oversized frame): a normal allocation, so the trigger
  // keeps advancing and the collector still runs when real garbage builds.
  return alloc(Cell::Type::kEnv);
}

void Heap::recycle_env_frame(Cell* frame) {
  const int cls = pool_class(frame->vec.size());
  if (cls < 0) return;  // oversized: let the collector take it
  frame->reset();
  frame->type = Cell::Type::kFree;
  ++stats_.env_recycles;
  --stats_.live_cells;
  env_pools_[cls].push_back(frame);
}

void Heap::drain_env_pools() {
  // Pooled frames are already kFree with live counts given back; the sweep
  // will route them to the chunk free lists without counting them as swept.
  for (auto& pool : env_pools_) pool.clear();
}

void Heap::write_barrier(Cell* cell) {
  Chunk* chunk = chunk_of(cell);
  if (chunk == nullptr || !chunk->protected_) return;
  // The mutation's store hits the read-only page: SIGSEGV -> handler
  // unprotects the chunk -> retry succeeds.
  (void)sys().mem_touch(cell->guest_addr, hw::Access::kWrite);
}

void Heap::mark(Value v) {
  if (v.is_cell() && v.cell != nullptr) mark_cell(v.cell);
}

void Heap::mark_cell(Cell* cell) {
  // Iterative DFS: benchmark structures (binary trees) are deep.
  std::vector<Cell*> stack{cell};
  while (!stack.empty()) {
    Cell* c = stack.back();
    stack.pop_back();
    if (c == nullptr || c->marked) continue;
    c->marked = true;
    auto push_value = [&stack](const Value& v) {
      if (v.is_cell() && v.cell != nullptr && !v.cell->marked) {
        stack.push_back(v.cell);
      }
    };
    push_value(c->car);
    push_value(c->cdr);
    push_value(c->body);
    for (const Value& v : c->vec) push_value(v);
    for (const auto& [sym, v] : c->bindings) push_value(v);
    if (c->closure_env != nullptr && !c->closure_env->marked) {
      stack.push_back(c->closure_env);
    }
    if (c->parent_env != nullptr && !c->parent_env->marked) {
      stack.push_back(c->parent_env);
    }
  }
}

void Heap::collect() {
  in_gc_ = true;
  ++stats_.collections;
  since_gc_ = 0;
  // Pooled frames are dead cells parked outside the chunk free lists; hand
  // them back before marking so the sweep re-files them (they are kFree, so
  // they are not counted as swept garbage).
  drain_env_pools();

  // Mark. Every fiber's shadow stack is a root set: suspended interpreter
  // threads hold live temporaries too.
  for (const Value& v : persistent_roots_) mark(v);
  for (const auto& [fiber, stack] : root_stacks_) {
    for (const Value& v : stack) mark(v);
  }
  if (extra_marker_) extra_marker_([this](Value v) { mark(v); });

  // Sweep. Chunks that end up empty are munmap'ed (but keep a small arena
  // so the allocator does not thrash map/unmap).
  std::uint64_t swept = 0;
  for (auto& chunk : chunks_) {
    chunk->free_list.clear();
    chunk->live = 0;
    for (auto& cell : chunk->cells) {
      if (cell->marked) {
        cell->marked = false;
        ++chunk->live;
      } else {
        if (cell->type != Cell::Type::kFree) {
          ++swept;
          cell->reset();
        }
        chunk->free_list.push_back(cell.get());
      }
    }
  }
  stats_.cells_swept += swept;
  stats_.live_cells -= swept;

  for (std::size_t i = chunks_.size(); i-- > 0;) {
    if (chunks_.size() <= config_.min_chunks) break;
    if (chunks_[i]->live == 0) unmap_chunk(i);
  }

  // Re-arm the SIGSEGV machinery for the next cycle, as Racket's collector
  // does — this is why rt_sigaction features so prominently in Fig 12.
  if (config_.write_barriers && barrier_handler_) {
    (void)sys().sigaction(ros::kSigSegv, barrier_handler_);
  }

  // Re-arm the write barriers: every chunk with survivors becomes old space,
  // protected read-only; the next mutation of each faults once (the
  // generational dirty-bit pattern). Empty chunks stay writable — they are
  // the nursery the allocator draws from.
  if (config_.write_barriers) {
    // The whole mprotect storm goes out as one batch (one channel doorbell
    // in hybrid mode; the identical sequential loop in native mode).
    std::vector<ros::SysReq> protects;
    std::vector<Chunk*> armed;
    for (auto& chunk : chunks_) {
      if (chunk->live > 0 && !chunk->protected_) {
        protects.push_back(ros::SysReq{
            ros::SysNr::kMprotect,
            {chunk->guest_base, config_.chunk_bytes, ros::kProtRead}});
        armed.push_back(chunk.get());
      }
    }
    if (!protects.empty()) {
      (void)sys().syscall_batch(protects);
      for (Chunk* chunk : armed) chunk->protected_ = true;
    }
  }
  // GC work is guest compute.
  sys().charge_user(2000 + 40 * swept);
  in_gc_ = false;
}

}  // namespace mv::scheme
