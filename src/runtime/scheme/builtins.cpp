#include <algorithm>
#include <cmath>

#include "runtime/scheme/engine.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

// The Vessel builtin library: the native procedures the benchmark programs
// and the prelude rely on.

namespace mv::scheme {

namespace {

Status arity_error(const char* name, std::size_t want, std::size_t got) {
  return err(Err::kInval, strfmt("%s: expected %zu argument(s), got %zu", name,
                                 want, got));
}

Status need(const char* name, const std::vector<Value>& args, std::size_t n) {
  if (args.size() != n) return arity_error(name, n, args.size());
  return Status::ok();
}

Status need_at_least(const char* name, const std::vector<Value>& args,
                     std::size_t n) {
  if (args.size() < n) return arity_error(name, n, args.size());
  return Status::ok();
}

Result<std::int64_t> want_int(const char* name, const Value& v) {
  if (!v.is_int()) {
    return err(Err::kInval, std::string(name) + ": expected integer");
  }
  return v.i;
}

Result<double> want_num(const char* name, const Value& v) {
  if (!v.is_number()) {
    return err(Err::kInval, std::string(name) + ": expected number");
  }
  return v.as_real();
}

Result<Cell*> want_pair(const char* name, const Value& v) {
  if (!v.is_pair()) {
    return err(Err::kInval, std::string(name) + ": expected pair");
  }
  return v.cell;
}

Result<Cell*> want_string(const char* name, const Value& v) {
  if (!v.is_string()) {
    return err(Err::kInval, std::string(name) + ": expected string");
  }
  return v.cell;
}

Result<Cell*> want_vector(const char* name, const Value& v) {
  if (!v.is_vector()) {
    return err(Err::kInval, std::string(name) + ": expected vector");
  }
  return v.cell;
}

// Numeric fold with int/real contagion.
template <typename IntOp, typename RealOp>
Result<Value> numeric_fold(const char* name, const std::vector<Value>& args,
                           Value seed, IntOp iop, RealOp rop) {
  if (args.size() == 1) {
    // Single operand: identity for +/* and, crucially, for min/max (folding
    // the seed in would turn (min 5) into 0).
    if (!args[0].is_number()) {
      return err(Err::kInval, std::string(name) + ": expected number");
    }
    return args[0];
  }
  Value acc = seed;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const Value& v = args[i];
    if (!v.is_number()) {
      return err(Err::kInval, std::string(name) + ": expected number");
    }
    if (i == 0 && args.size() > 1) {
      acc = v;
      continue;
    }
    if (acc.is_int() && v.is_int()) {
      acc = Value::integer(iop(acc.i, v.i));
    } else {
      acc = Value::real(rop(acc.as_real(), v.as_real()));
    }
  }
  return acc;
}

template <typename Cmp>
Result<Value> numeric_compare(const char* name, const std::vector<Value>& args,
                              Cmp cmp) {
  MV_RETURN_IF_ERROR(need_at_least(name, args, 2));
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    MV_ASSIGN_OR_RETURN(const double a, want_num(name, args[i]));
    MV_ASSIGN_OR_RETURN(const double b, want_num(name, args[i + 1]));
    if (!cmp(a, b)) return Value::boolean(false);
  }
  return Value::boolean(true);
}

}  // namespace

void Engine::register_builtins() {
  // --- arithmetic ------------------------------------------------------------
  define_builtin("+", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    return numeric_fold("+", args, Value::integer(0),
                        [](auto a, auto b) { return a + b; },
                        [](double a, double b) { return a + b; });
  });
  define_builtin("*", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    return numeric_fold("*", args, Value::integer(1),
                        [](auto a, auto b) { return a * b; },
                        [](double a, double b) { return a * b; });
  });
  define_builtin("-", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need_at_least("-", args, 1));
    if (args.size() == 1) {
      if (args[0].is_int()) return Value::integer(-args[0].i);
      MV_ASSIGN_OR_RETURN(const double d, want_num("-", args[0]));
      return Value::real(-d);
    }
    return numeric_fold("-", args, Value::integer(0),
                        [](auto a, auto b) { return a - b; },
                        [](double a, double b) { return a - b; });
  });
  define_builtin("/", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need_at_least("/", args, 1));
    if (args.size() == 1) {
      MV_ASSIGN_OR_RETURN(const double d, want_num("/", args[0]));
      if (d == 0) return err(Err::kInval, "/: division by zero");
      return Value::real(1.0 / d);
    }
    Value acc = args[0];
    for (std::size_t i = 1; i < args.size(); ++i) {
      MV_ASSIGN_OR_RETURN(const double b, want_num("/", args[i]));
      if (b == 0) return err(Err::kInval, "/: division by zero");
      if (acc.is_int() && args[i].is_int() && acc.i % args[i].i == 0) {
        acc = Value::integer(acc.i / args[i].i);
      } else {
        acc = Value::real(acc.as_real() / b);
      }
    }
    return acc;
  });
  define_builtin("quotient",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("quotient", args, 2));
    MV_ASSIGN_OR_RETURN(const std::int64_t a, want_int("quotient", args[0]));
    MV_ASSIGN_OR_RETURN(const std::int64_t b, want_int("quotient", args[1]));
    if (b == 0) return err(Err::kInval, "quotient: division by zero");
    return Value::integer(a / b);
  });
  define_builtin("remainder",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("remainder", args, 2));
    MV_ASSIGN_OR_RETURN(const std::int64_t a, want_int("remainder", args[0]));
    MV_ASSIGN_OR_RETURN(const std::int64_t b, want_int("remainder", args[1]));
    if (b == 0) return err(Err::kInval, "remainder: division by zero");
    return Value::integer(a % b);
  });
  define_builtin("modulo",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("modulo", args, 2));
    MV_ASSIGN_OR_RETURN(const std::int64_t a, want_int("modulo", args[0]));
    MV_ASSIGN_OR_RETURN(const std::int64_t b, want_int("modulo", args[1]));
    if (b == 0) return err(Err::kInval, "modulo: division by zero");
    std::int64_t m = a % b;
    if (m != 0 && ((m < 0) != (b < 0))) m += b;
    return Value::integer(m);
  });
  define_builtin("abs", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("abs", args, 1));
    if (args[0].is_int()) return Value::integer(std::abs(args[0].i));
    MV_ASSIGN_OR_RETURN(const double d, want_num("abs", args[0]));
    return Value::real(std::fabs(d));
  });
  define_builtin("min", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    return numeric_fold("min", args, Value::integer(0),
                        [](auto a, auto b) { return std::min(a, b); },
                        [](double a, double b) { return std::min(a, b); });
  });
  define_builtin("max", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    return numeric_fold("max", args, Value::integer(0),
                        [](auto a, auto b) { return std::max(a, b); },
                        [](double a, double b) { return std::max(a, b); });
  });

  const auto unary_real = [this](const char* name, double (*fn)(double)) {
    define_builtin(name,
                   [name, fn](Engine&, std::vector<Value>& args)
                       -> Result<Value> {
      MV_RETURN_IF_ERROR(need(name, args, 1));
      MV_ASSIGN_OR_RETURN(const double d, want_num(name, args[0]));
      return Value::real(fn(d));
    });
  };
  unary_real("sqrt", [](double d) { return std::sqrt(d); });
  unary_real("sin", [](double d) { return std::sin(d); });
  unary_real("cos", [](double d) { return std::cos(d); });
  unary_real("tan", [](double d) { return std::tan(d); });
  unary_real("exp", [](double d) { return std::exp(d); });
  unary_real("log", [](double d) { return std::log(d); });
  unary_real("atan", [](double d) { return std::atan(d); });

  define_builtin("expt",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("expt", args, 2));
    MV_ASSIGN_OR_RETURN(const double base, want_num("expt", args[0]));
    MV_ASSIGN_OR_RETURN(const double power, want_num("expt", args[1]));
    if (args[0].is_int() && args[1].is_int() && args[1].i >= 0) {
      std::int64_t r = 1;
      for (std::int64_t i = 0; i < args[1].i; ++i) r *= args[0].i;
      return Value::integer(r);
    }
    return Value::real(std::pow(base, power));
  });

  const auto to_int_fn = [this](const char* name, double (*fn)(double)) {
    define_builtin(name,
                   [name, fn](Engine&, std::vector<Value>& args)
                       -> Result<Value> {
      MV_RETURN_IF_ERROR(need(name, args, 1));
      if (args[0].is_int()) return args[0];
      MV_ASSIGN_OR_RETURN(const double d, want_num(name, args[0]));
      return Value::real(fn(d));
    });
  };
  to_int_fn("floor", [](double d) { return std::floor(d); });
  to_int_fn("ceiling", [](double d) { return std::ceil(d); });
  to_int_fn("round", [](double d) { return std::nearbyint(d); });
  to_int_fn("truncate", [](double d) { return std::trunc(d); });

  define_builtin("exact->inexact",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("exact->inexact", args, 1));
    MV_ASSIGN_OR_RETURN(const double d, want_num("exact->inexact", args[0]));
    return Value::real(d);
  });
  define_builtin("inexact->exact",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("inexact->exact", args, 1));
    MV_ASSIGN_OR_RETURN(const double d, want_num("inexact->exact", args[0]));
    return Value::integer(static_cast<std::int64_t>(d));
  });

  define_builtin("=", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    return numeric_compare("=", args, [](double a, double b) { return a == b; });
  });
  define_builtin("<", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    return numeric_compare("<", args, [](double a, double b) { return a < b; });
  });
  define_builtin(">", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    return numeric_compare(">", args, [](double a, double b) { return a > b; });
  });
  define_builtin("<=", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    return numeric_compare("<=", args,
                           [](double a, double b) { return a <= b; });
  });
  define_builtin(">=", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    return numeric_compare(">=", args,
                           [](double a, double b) { return a >= b; });
  });

  const auto predicate = [this](const char* name,
                                bool (*fn)(const Value&)) {
    define_builtin(name, [name, fn](Engine&, std::vector<Value>& args)
                             -> Result<Value> {
      MV_RETURN_IF_ERROR(need(name, args, 1));
      return Value::boolean(fn(args[0]));
    });
  };
  predicate("zero?", [](const Value& v) {
    return v.is_number() && v.as_real() == 0;
  });
  predicate("positive?", [](const Value& v) {
    return v.is_number() && v.as_real() > 0;
  });
  predicate("negative?", [](const Value& v) {
    return v.is_number() && v.as_real() < 0;
  });
  predicate("even?", [](const Value& v) { return v.is_int() && v.i % 2 == 0; });
  predicate("odd?", [](const Value& v) { return v.is_int() && v.i % 2 != 0; });
  predicate("number?", [](const Value& v) { return v.is_number(); });
  predicate("integer?", [](const Value& v) { return v.is_int(); });
  predicate("real?", [](const Value& v) { return v.is_number(); });
  predicate("null?", [](const Value& v) { return v.is_nil(); });
  predicate("pair?", [](const Value& v) { return v.is_pair(); });
  predicate("boolean?", [](const Value& v) { return v.is_bool(); });
  predicate("symbol?", [](const Value& v) { return v.is_sym(); });
  predicate("string?", [](const Value& v) { return v.is_string(); });
  predicate("vector?", [](const Value& v) { return v.is_vector(); });
  predicate("char?", [](const Value& v) { return v.is_char(); });
  predicate("procedure?", [](const Value& v) { return v.is_callable(); });
  predicate("eof-object?", [](const Value& v) {
    return v.tag == Value::Tag::kEof;
  });

  define_builtin("not", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("not", args, 1));
    return Value::boolean(!args[0].truthy());
  });

  // --- equality -----------------------------------------------------------------
  define_builtin("eq?", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("eq?", args, 2));
    return Value::boolean(value_eq(args[0], args[1]));
  });
  define_builtin("eqv?",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("eqv?", args, 2));
    return Value::boolean(value_eqv(args[0], args[1]));
  });
  define_builtin("equal?",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("equal?", args, 2));
    return Value::boolean(value_equal(args[0], args[1]));
  });

  // --- pairs and lists ------------------------------------------------------------
  define_builtin("cons",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("cons", args, 2));
    return e.cons(args[0], args[1]);
  });
  define_builtin("car", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("car", args, 1));
    MV_ASSIGN_OR_RETURN(Cell* const p, want_pair("car", args[0]));
    return p->car;
  });
  define_builtin("cdr", [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("cdr", args, 1));
    MV_ASSIGN_OR_RETURN(Cell* const p, want_pair("cdr", args[0]));
    return p->cdr;
  });
  define_builtin("set-car!",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("set-car!", args, 2));
    MV_ASSIGN_OR_RETURN(Cell* const p, want_pair("set-car!", args[0]));
    e.heap().write_barrier(p);
    p->car = args[1];
    return Value::unspecified();
  });
  define_builtin("set-cdr!",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("set-cdr!", args, 2));
    MV_ASSIGN_OR_RETURN(Cell* const p, want_pair("set-cdr!", args[0]));
    e.heap().write_barrier(p);
    p->cdr = args[1];
    return Value::unspecified();
  });
  define_builtin("list",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    return e.make_list(args);
  });
  define_builtin("length",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("length", args, 1));
    std::int64_t n = 0;
    for (Value v = args[0]; !v.is_nil(); v = v.cell->cdr) {
      if (!v.is_pair()) return err(Err::kInval, "length: improper list");
      ++n;
    }
    return Value::integer(n);
  });
  define_builtin("append",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    RootScope scope(e.heap());
    Value result = args.empty() ? Value::nil() : args.back();
    scope.add(result);
    for (std::size_t i = args.size() - 1; i-- > 0;) {
      std::vector<Value> items;
      for (Value v = args[i]; v.is_pair(); v = v.cell->cdr) {
        items.push_back(v.cell->car);
      }
      for (std::size_t j = items.size(); j-- > 0;) {
        scope.add(result);
        MV_ASSIGN_OR_RETURN(result, e.cons(items[j], result));
      }
    }
    return result;
  });
  define_builtin("reverse",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("reverse", args, 1));
    RootScope scope(e.heap());
    Value out = Value::nil();
    for (Value v = args[0]; v.is_pair(); v = v.cell->cdr) {
      scope.add(out);
      MV_ASSIGN_OR_RETURN(out, e.cons(v.cell->car, out));
    }
    return out;
  });

  // --- vectors -----------------------------------------------------------------------
  define_builtin("make-vector",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need_at_least("make-vector", args, 1));
    MV_ASSIGN_OR_RETURN(const std::int64_t n, want_int("make-vector", args[0]));
    if (n < 0) return err(Err::kInval, "make-vector: negative size");
    return e.make_vector(static_cast<std::size_t>(n),
                         args.size() > 1 ? args[1] : Value::integer(0));
  });
  define_builtin("vector",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_ASSIGN_OR_RETURN(const Value v, e.make_vector(args.size(),
                                                     Value::nil()));
    for (std::size_t i = 0; i < args.size(); ++i) v.cell->vec[i] = args[i];
    return v;
  });
  define_builtin("vector-ref",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("vector-ref", args, 2));
    MV_ASSIGN_OR_RETURN(Cell* const v, want_vector("vector-ref", args[0]));
    MV_ASSIGN_OR_RETURN(const std::int64_t i, want_int("vector-ref", args[1]));
    if (i < 0 || static_cast<std::size_t>(i) >= v->vec.size()) {
      return err(Err::kRange, strfmt("vector-ref: index %lld out of range",
                                     static_cast<long long>(i)));
    }
    return v->vec[static_cast<std::size_t>(i)];
  });
  define_builtin("vector-set!",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("vector-set!", args, 3));
    MV_ASSIGN_OR_RETURN(Cell* const v, want_vector("vector-set!", args[0]));
    MV_ASSIGN_OR_RETURN(const std::int64_t i, want_int("vector-set!", args[1]));
    if (i < 0 || static_cast<std::size_t>(i) >= v->vec.size()) {
      return err(Err::kRange, "vector-set!: index out of range");
    }
    e.heap().write_barrier(v);
    v->vec[static_cast<std::size_t>(i)] = args[2];
    return Value::unspecified();
  });
  define_builtin("vector-length",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("vector-length", args, 1));
    MV_ASSIGN_OR_RETURN(Cell* const v, want_vector("vector-length", args[0]));
    return Value::integer(static_cast<std::int64_t>(v->vec.size()));
  });
  define_builtin("vector-fill!",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("vector-fill!", args, 2));
    MV_ASSIGN_OR_RETURN(Cell* const v, want_vector("vector-fill!", args[0]));
    e.heap().write_barrier(v);
    std::fill(v->vec.begin(), v->vec.end(), args[1]);
    return Value::unspecified();
  });

  // --- strings -----------------------------------------------------------------------
  define_builtin("string-length",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("string-length", args, 1));
    MV_ASSIGN_OR_RETURN(Cell* const s, want_string("string-length", args[0]));
    return Value::integer(static_cast<std::int64_t>(s->str.size()));
  });
  define_builtin("string-append",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    std::string out;
    for (const Value& v : args) {
      MV_ASSIGN_OR_RETURN(Cell* const s, want_string("string-append", v));
      out += s->str;
    }
    return e.make_string(std::move(out));
  });
  define_builtin("substring",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("substring", args, 3));
    MV_ASSIGN_OR_RETURN(Cell* const s, want_string("substring", args[0]));
    MV_ASSIGN_OR_RETURN(const std::int64_t from, want_int("substring", args[1]));
    MV_ASSIGN_OR_RETURN(const std::int64_t to, want_int("substring", args[2]));
    if (from < 0 || to < from ||
        static_cast<std::size_t>(to) > s->str.size()) {
      return err(Err::kRange, "substring: bad range");
    }
    return e.make_string(s->str.substr(static_cast<std::size_t>(from),
                                       static_cast<std::size_t>(to - from)));
  });
  define_builtin("string-ref",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("string-ref", args, 2));
    MV_ASSIGN_OR_RETURN(Cell* const s, want_string("string-ref", args[0]));
    MV_ASSIGN_OR_RETURN(const std::int64_t i, want_int("string-ref", args[1]));
    if (i < 0 || static_cast<std::size_t>(i) >= s->str.size()) {
      return err(Err::kRange, "string-ref: index out of range");
    }
    return Value::character(s->str[static_cast<std::size_t>(i)]);
  });
  define_builtin("string=?",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("string=?", args, 2));
    MV_ASSIGN_OR_RETURN(Cell* const a, want_string("string=?", args[0]));
    MV_ASSIGN_OR_RETURN(Cell* const b, want_string("string=?", args[1]));
    return Value::boolean(a->str == b->str);
  });
  define_builtin("make-string",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need_at_least("make-string", args, 1));
    MV_ASSIGN_OR_RETURN(const std::int64_t n, want_int("make-string", args[0]));
    const char fill = args.size() > 1 && args[1].is_char() ? args[1].c : ' ';
    return e.make_string(std::string(static_cast<std::size_t>(n), fill));
  });
  define_builtin("string->number",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("string->number", args, 1));
    MV_ASSIGN_OR_RETURN(Cell* const s, want_string("string->number", args[0]));
    char* end = nullptr;
    if (s->str.find('.') == std::string::npos) {
      const long long i = std::strtoll(s->str.c_str(), &end, 10);
      if (end == s->str.c_str() + s->str.size() && !s->str.empty()) {
        return Value::integer(i);
      }
    }
    const double d = std::strtod(s->str.c_str(), &end);
    if (end == s->str.c_str() + s->str.size() && !s->str.empty()) {
      return Value::real(d);
    }
    return Value::boolean(false);
  });
  define_builtin("number->string",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need_at_least("number->string", args, 1));
    if (!args[0].is_number()) {
      return err(Err::kInval, "number->string: expected number");
    }
    return e.make_string(e.to_display(args[0]));
  });
  define_builtin("symbol->string",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("symbol->string", args, 1));
    if (!args[0].is_sym()) {
      return err(Err::kInval, "symbol->string: expected symbol");
    }
    return e.make_string(e.sym_name(args[0].sym));
  });
  define_builtin("string->symbol",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("string->symbol", args, 1));
    MV_ASSIGN_OR_RETURN(Cell* const s, want_string("string->symbol", args[0]));
    return Value::symbol(e.intern(s->str));
  });
  define_builtin("string-copy",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("string-copy", args, 1));
    MV_ASSIGN_OR_RETURN(Cell* const s, want_string("string-copy", args[0]));
    return e.make_string(s->str);
  });
  define_builtin("string-set!",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("string-set!", args, 3));
    MV_ASSIGN_OR_RETURN(Cell* const s, want_string("string-set!", args[0]));
    MV_ASSIGN_OR_RETURN(const std::int64_t i, want_int("string-set!", args[1]));
    if (!args[2].is_char()) return err(Err::kInval, "string-set!: not a char");
    if (i < 0 || static_cast<std::size_t>(i) >= s->str.size()) {
      return err(Err::kRange, "string-set!: index out of range");
    }
    e.heap().write_barrier(s);
    s->str[static_cast<std::size_t>(i)] = args[2].c;
    return Value::unspecified();
  });

  // --- characters ----------------------------------------------------------------------
  define_builtin("char->integer",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("char->integer", args, 1));
    if (!args[0].is_char()) return err(Err::kInval, "char->integer");
    return Value::integer(static_cast<unsigned char>(args[0].c));
  });
  define_builtin("integer->char",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("integer->char", args, 1));
    MV_ASSIGN_OR_RETURN(const std::int64_t i, want_int("integer->char",
                                                       args[0]));
    return Value::character(static_cast<char>(i));
  });
  define_builtin("char=?",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("char=?", args, 2));
    return Value::boolean(args[0].is_char() && args[1].is_char() &&
                          args[0].c == args[1].c);
  });

  // --- control -------------------------------------------------------------------------
  define_builtin("apply",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need_at_least("apply", args, 2));
    std::vector<Value> call_args(args.begin() + 1, args.end() - 1);
    for (Value v = args.back(); v.is_pair(); v = v.cell->cdr) {
      call_args.push_back(v.cell->car);
    }
    return e.apply_value(args[0], call_args);
  });
  define_builtin("error",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    std::string msg = "error:";
    for (const Value& v : args) msg += " " + e.to_display(v);
    return err(Err::kState, msg);
  });

  // --- I/O -----------------------------------------------------------------------------
  define_builtin("display",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need_at_least("display", args, 1));
    MV_RETURN_IF_ERROR(e.out(e.to_display(args[0])));
    return Value::unspecified();
  });
  define_builtin("write",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need_at_least("write", args, 1));
    MV_RETURN_IF_ERROR(e.out(e.to_write(args[0])));
    return Value::unspecified();
  });
  define_builtin("newline",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    (void)args;
    MV_RETURN_IF_ERROR(e.out("\n"));
    return Value::unspecified();
  });
  define_builtin("write-string",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need_at_least("write-string", args, 1));
    MV_ASSIGN_OR_RETURN(Cell* const s, want_string("write-string", args[0]));
    MV_RETURN_IF_ERROR(e.out(s->str));
    return Value::unspecified();
  });
  // (load "path") — evaluate a file through the guest filesystem, "a
  // command-line batch interface through which the user can execute a Scheme
  // file (which can include other files)".
  define_builtin("load",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("load", args, 1));
    MV_ASSIGN_OR_RETURN(Cell* const s, want_string("load", args[0]));
    MV_RETURN_IF_ERROR(e.load_path(s->str));
    return Value::unspecified();
  });
  define_builtin("flush-output",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    (void)args;
    MV_RETURN_IF_ERROR(e.flush());
    return Value::unspecified();
  });

  // --- system ---------------------------------------------------------------------------
  define_builtin("current-milliseconds",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    (void)args;
    const ros::TimeVal tv = e.sys().vdso_gettimeofday();
    return Value::integer(
        static_cast<std::int64_t>(tv.sec * 1000 + tv.usec / 1000));
  });
  define_builtin("current-seconds",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    (void)args;
    return Value::integer(
        static_cast<std::int64_t>(e.sys().vdso_gettimeofday().sec));
  });
  define_builtin("collect-garbage",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    (void)args;
    e.heap().collect();
    return Value::unspecified();
  });
  define_builtin("gc-stats",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    (void)args;
    const GcStats& st = e.heap().stats();
    std::vector<Value> items{
        Value::integer(static_cast<std::int64_t>(st.collections)),
        Value::integer(static_cast<std::int64_t>(st.cells_allocated)),
        Value::integer(static_cast<std::int64_t>(st.live_cells)),
        Value::integer(static_cast<std::int64_t>(st.chunks_mapped)),
        Value::integer(static_cast<std::int64_t>(st.chunks_unmapped)),
        Value::integer(static_cast<std::int64_t>(st.barrier_hits)),
    };
    return e.make_list(items);
  });
  define_builtin("random",
                 [rng = Rng(0x76657373ull)](Engine&, std::vector<Value>& args)
                     mutable -> Result<Value> {
    if (args.empty()) return Value::real(rng.uniform());
    MV_ASSIGN_OR_RETURN(const std::int64_t n, want_int("random", args[0]));
    if (n <= 0) return err(Err::kInval, "random: bound must be positive");
    return Value::integer(
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(n))));
  });
  define_builtin("void",
                 [](Engine&, std::vector<Value>&) -> Result<Value> {
    return Value::unspecified();
  });
  // --- sorting ---------------------------------------------------------------
  // (sort lst less?) — stable merge sort; less? is any two-argument
  // procedure.
  define_builtin("sort",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("sort", args, 2));
    if (!args[1].is_callable()) {
      return err(Err::kInval, "sort: expected a comparator");
    }
    std::vector<Value> items;
    for (Value v = args[0]; !v.is_nil(); v = v.cell->cdr) {
      if (!v.is_pair()) return err(Err::kInval, "sort: improper list");
      items.push_back(v.cell->car);
    }
    RootScope scope(e.heap());
    for (const Value& v : items) scope.add(v);
    scope.add(args[1]);
    // Stable merge sort driven by the Scheme comparator. std::stable_sort is
    // unusable here: a comparator error must abort cleanly, not throw.
    Status failed = Status::ok();
    const std::function<bool(const Value&, const Value&)> less =
        [&](const Value& a, const Value& b) {
          if (!failed.is_ok()) return false;
          std::vector<Value> cmp_args{a, b};
          auto r = e.apply_value(args[1], cmp_args);
          if (!r) {
            failed = r.status();
            return false;
          }
          return r->truthy();
        };
    std::vector<Value> tmp(items.size());
    const std::function<void(std::size_t, std::size_t)> msort =
        [&](std::size_t lo, std::size_t hi) {
          if (hi - lo < 2 || !failed.is_ok()) return;
          const std::size_t mid = lo + (hi - lo) / 2;
          msort(lo, mid);
          msort(mid, hi);
          std::size_t a = lo, b = mid, out = lo;
          while (a < mid && b < hi) {
            tmp[out++] = less(items[b], items[a]) ? items[b++] : items[a++];
          }
          while (a < mid) tmp[out++] = items[a++];
          while (b < hi) tmp[out++] = items[b++];
          for (std::size_t i = lo; i < hi; ++i) items[i] = tmp[i];
        };
    msort(0, items.size());
    MV_RETURN_IF_ERROR(failed);
    return e.make_list(items);
  });
  define_builtin("assv",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("assv", args, 2));
    for (Value v = args[1]; v.is_pair(); v = v.cell->cdr) {
      if (v.cell->car.is_pair() &&
          value_eqv(v.cell->car.cell->car, args[0])) {
        return v.cell->car;
      }
    }
    return Value::boolean(false);
  });
  define_builtin("string->list",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("string->list", args, 1));
    MV_ASSIGN_OR_RETURN(Cell* const s, want_string("string->list", args[0]));
    std::vector<Value> chars;
    chars.reserve(s->str.size());
    for (const char c : s->str) chars.push_back(Value::character(c));
    return e.make_list(chars);
  });
  define_builtin("list->string",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("list->string", args, 1));
    std::string out;
    for (Value v = args[0]; v.is_pair(); v = v.cell->cdr) {
      if (!v.cell->car.is_char()) {
        return err(Err::kInval, "list->string: expected chars");
      }
      out.push_back(v.cell->car.c);
    }
    return e.make_string(std::move(out));
  });
  define_builtin("string<?",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("string<?", args, 2));
    MV_ASSIGN_OR_RETURN(Cell* const a, want_string("string<?", args[0]));
    MV_ASSIGN_OR_RETURN(Cell* const b, want_string("string<?", args[1]));
    return Value::boolean(a->str < b->str);
  });
  define_builtin("char<?",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("char<?", args, 2));
    if (!args[0].is_char() || !args[1].is_char()) {
      return err(Err::kInval, "char<?: expected chars");
    }
    return Value::boolean(args[0].c < args[1].c);
  });
  const auto char_pred = [this](const char* name, bool (*fn)(char)) {
    define_builtin(name, [name, fn](Engine&, std::vector<Value>& args)
                             -> Result<Value> {
      MV_RETURN_IF_ERROR(need(name, args, 1));
      if (!args[0].is_char()) {
        return err(Err::kInval, std::string(name) + ": expected char");
      }
      return Value::boolean(fn(args[0].c));
    });
  };
  char_pred("char-alphabetic?", [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  });
  char_pred("char-numeric?", [](char c) { return c >= '0' && c <= '9'; });
  char_pred("char-whitespace?", [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  });
  define_builtin("char-upcase",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("char-upcase", args, 1));
    if (!args[0].is_char()) return err(Err::kInval, "char-upcase");
    const char c = args[0].c;
    return Value::character(c >= 'a' && c <= 'z'
                                ? static_cast<char>(c - 'a' + 'A')
                                : c);
  });
  define_builtin("char-downcase",
                 [](Engine&, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("char-downcase", args, 1));
    if (!args[0].is_char()) return err(Err::kInval, "char-downcase");
    const char c = args[0].c;
    return Value::character(c >= 'A' && c <= 'Z'
                                ? static_cast<char>(c - 'A' + 'a')
                                : c);
  });
  define_builtin("list-copy",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("list-copy", args, 1));
    std::vector<Value> items;
    for (Value v = args[0]; v.is_pair(); v = v.cell->cdr) {
      items.push_back(v.cell->car);
    }
    return e.make_list(items);
  });

  // --- interpreter threads ----------------------------------------------------
  // (spawn-thread thunk) -> tid. Runs `thunk` on a new runtime thread
  // created through the guest pthread layer: a Linux clone natively, a
  // nested AeroKernel thread under Multiverse (the default pthread
  // override). (thread-join tid) blocks until it finishes.
  define_builtin("spawn-thread",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("spawn-thread", args, 1));
    if (!args[0].is_callable()) {
      return err(Err::kInval, "spawn-thread: expected a procedure");
    }
    MV_ASSIGN_OR_RETURN(const int tid, e.spawn_interpreter_thread(args[0]));
    return Value::integer(tid);
  });
  define_builtin("thread-join",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    MV_RETURN_IF_ERROR(need("thread-join", args, 1));
    MV_ASSIGN_OR_RETURN(const std::int64_t tid, want_int("thread-join",
                                                         args[0]));
    MV_RETURN_IF_ERROR(e.sys().thread_join(static_cast<int>(tid)));
    return Value::unspecified();
  });
  define_builtin("thread-yield",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    (void)args;
    e.sys().thread_yield();
    return Value::unspecified();
  });

  define_builtin("exit",
                 [](Engine& e, std::vector<Value>& args) -> Result<Value> {
    (void)e.flush();
    const int code =
        !args.empty() && args[0].is_int() ? static_cast<int>(args[0].i) : 0;
    e.sys().exit_group(code);  // throws GuestExit
    return Value::unspecified();
  });
}

Result<Value> Engine::apply_value(Value fn, std::vector<Value>& args) {
  if (!fn.is_callable()) {
    return err(Err::kInval, "apply: not a procedure: " + to_display(fn));
  }
  RootScope scope(heap_);
  scope.add(fn);
  for (const Value& a : args) scope.add(a);
  if (fn.cell->type == Cell::Type::kBuiltin) {
    count_step();
    return fn.cell->builtin(*this, args);
  }
  // Bytecode closures (VM engine) apply through the VM, not the tree walker.
  if (fn.cell->proto_idx >= 0) return vm_apply(fn, args);
  Cell* call_env = nullptr;
  MV_RETURN_IF_ERROR(apply_closure_env(fn.cell, args, &call_env).status());
  scope.add(Value::from_cell(call_env));
  Value result = Value::unspecified();
  for (Value body = fn.cell->body; body.is_pair(); body = body.cell->cdr) {
    MV_ASSIGN_OR_RETURN(result, eval(body.cell->car, call_env));
  }
  return result;
}

}  // namespace mv::scheme
