#pragma once

// The seven Computer Language Benchmarks Game programs the paper evaluates
// hybridized Racket with (Sec 5), written in Vessel Scheme, plus host-side
// C++ reference implementations used by the tests to validate the
// interpreter's answers, and the boot-collection installer that gives the
// engine its Racket-like startup syscall profile.

#include <cstdint>
#include <string>

#include "ros/fs.hpp"

namespace mv::scheme {

enum class Bench {
  kBinaryTrees,   // "binary-tree-2": GC benchmark
  kFannkuch,      // "fannkuch-redux": permutations
  kFasta,         // random DNA generation (linear search)
  kFasta3,        // random DNA generation (lookup table)
  kNBody,         // Jovian n-body simulation
  kSpectralNorm,  // spectral norm power method
  kMandelbrot,    // "mandelbrot-2"
  kCount_,
};

inline constexpr int kBenchCount = static_cast<int>(Bench::kCount_);

const char* benchmark_name(Bench b) noexcept;

// Scheme source for the benchmark at problem size `n`.
std::string benchmark_source(Bench b, int n);

// Paper-shape problem sizes: `test` completes in milliseconds; `bench` in
// simulated seconds (used by the Fig 10/13 harnesses).
int benchmark_test_size(Bench b) noexcept;
int benchmark_bench_size(Bench b) noexcept;

// Install the Vessel collection tree into the simulated filesystem, so the
// engine's boot sequence stats/opens/reads/closes real files (Fig 11's
// startup profile).
Status install_boot_files(ros::FileSystem& fs);

// --- host-side reference implementations (for correctness tests) ------------
namespace reference {
std::int64_t binary_trees_check(int depth);  // nodes in a perfect tree
struct FannkuchResult {
  std::int64_t checksum;
  int max_flips;
};
FannkuchResult fannkuch(int n);
double spectral_norm(int n);
struct NBodyResult {
  double initial_energy;
  double final_energy;
};
NBodyResult nbody(int steps);
std::int64_t mandelbrot_inside(int n);
std::string fasta(int n);  // full expected output of the fasta benchmark
}  // namespace reference

}  // namespace mv::scheme
