#pragma once

// AeroKernel symbol table. Overrides resolve legacy function names to HRT
// virtual addresses through this table; the paper notes the lookup happens on
// every overridden call ("so incurs a non-trivial overhead") and suggests an
// ELF-style symbol cache — both behaviours are implemented here and compared
// by bench/abl_symbol_cache.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hw/core.hpp"
#include "support/result.hpp"
#include "vmm/hrt_image.hpp"

namespace mv::naut {

class SymbolTable {
 public:
  // Bind the image's symbols at `base_vaddr` (the image's HRT load address).
  void load(const vmm::HrtImage& image, std::uint64_t base_vaddr);

  // Resolve with a charged linear scan (the default Multiverse behaviour).
  // With the cache enabled, repeat lookups cost a hash probe instead.
  Result<std::uint64_t> resolve(hw::Core& core, std::string_view name);

  void set_cache_enabled(bool enabled) noexcept { cache_enabled_ = enabled; }
  [[nodiscard]] bool cache_enabled() const noexcept { return cache_enabled_; }

  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
  [[nodiscard]] std::uint64_t cache_hits() const noexcept {
    return cache_hits_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return symbols_.size(); }

 private:
  struct Entry {
    std::string name;
    std::uint64_t vaddr;
  };
  std::vector<Entry> symbols_;
  std::unordered_map<std::string, std::uint64_t> cache_;
  bool cache_enabled_ = false;
  std::uint64_t lookups_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace mv::naut
