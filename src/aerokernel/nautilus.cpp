#include "aerokernel/nautilus.hpp"

#include <algorithm>
#include <cassert>

#include "support/log.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace mv::naut {

using hw::kPageSize;

Nautilus::Nautilus(hw::Machine& machine, Sched& sched, vmm::Hvm& hvm,
                   Config config)
    : machine_(&machine), sched_(&sched), hvm_(&hvm), config_(config) {
  hvm_->attach_hrt(this);
}

Status Nautilus::boot(const vmm::BootInfo& info) {
  boot_info_ = info;
  MV_ASSIGN_OR_RETURN(cr3_, machine_->paging().new_root());

  for (const unsigned c : info.hrt_cores) {
    hw::Core& core = machine_->core(c);
    core.write_cr3(cr3_);
    core.set_cpl(0);
    // The paper's fix: "there is a bit to enforce write faults in ring 0 in
    // the cr0 control register." Without it, COW breaks silently.
    core.set_cr0_wp(config_.enforce_cr0_wp);
  }
  install_idt();

  // Kernel heap: HRT-private memory past the image and comm page.
  heap_bump_ = 0;  // allocated on demand through the HVM's HRT partition
  heap_end_ = info.dram_bytes;

  symbols_.load(vmm::HrtImageBuilder::default_nautilus_image(),
                image_base_vaddr());

  // Bring-up work on the boot core (the HVM charges the bulk of the boot
  // latency; this is the kernel-side initialization).
  machine_->core(boot_core()).charge(us_to_cycles(400));
  merged_ = false;
  booted_ = true;
  MV_INFO("naut", strfmt("booted on core %u, image at %#llx", boot_core(),
                         static_cast<unsigned long long>(image_base_vaddr())));
  return Status::ok();
}

void Nautilus::reboot() {
  // The HRT can be rebooted independently of the ROS in milliseconds. All
  // HRT threads must have exited (the Multiverse runtime guarantees this).
  assert(live_thread_count_internal() == 0 && "reboot with live HRT threads");
  if (cr3_ != 0) {
    // Drop borrowed lower-half subtrees before freeing our hierarchy.
    for (int i = 0; i < hw::kUserPml4Entries; ++i) {
      machine_->paging().write_pml4_entry(cr3_, i, 0);
    }
    machine_->paging().free_hierarchy(cr3_);
    cr3_ = 0;
  }
  threads_.clear();
  task_threads_.clear();
  events_.clear();
  event_waiters_.clear();
  last_fault_.clear();
  merged_ = false;
  booted_ = false;
}

std::size_t Nautilus::live_thread_count_internal() const {
  std::size_t live = 0;
  for (const auto& t : threads_) {
    if (!t->exited) ++live;
  }
  return live;
}

void Nautilus::install_idt() {
  for (const unsigned c : boot_info_.hrt_cores) {
    hw::Core& core = machine_->core(c);
    // Interrupts/exceptions run on a dedicated IST stack so the hardware
    // frame push cannot destroy the red zone of interrupted leaf functions
    // (Sec 4.4). We model the stack as a kernel heap block.
    auto stack = kmalloc(16 * 1024);
    if (stack) {
      core.set_ist_stack(1, *stack + 16 * 1024);
    }
    core.set_idt_entry(
        hw::kVecPageFault,
        [this](hw::Core& cc, const hw::InterruptFrame& frame) {
          page_fault_handler(cc, frame);
        },
        /*ist_index=*/1);
  }
}

Status Nautilus::map_higher_half_page(std::uint64_t vaddr,
                                      std::uint64_t active_root) {
  const std::uint64_t paddr = vaddr - boot_info_.higher_half_base;
  if (paddr >= boot_info_.dram_bytes) {
    return err(Err::kBadAddr, "higher-half access beyond DRAM");
  }
  // Identity-map with a 2 MiB large page, as real Nautilus does — one fault
  // covers the whole region. The tables always grow under the boot root so
  // every tenant root can borrow the same subtree.
  const std::uint64_t large_va = vaddr & ~(hw::kLargePageSize - 1);
  const std::uint64_t large_pa = paddr & ~(hw::kLargePageSize - 1);
  MV_RETURN_IF_ERROR(machine_->paging().map_large_page(
      cr3_, large_va, large_pa,
      hw::kPtePresent | hw::kPteWrite));  // kernel-only, executable
  if (active_root != 0 && active_root != cr3_) {
    // The faulting core runs on a tenant root: refresh its borrowed PML4
    // slot in case the mapping just materialized a new top-level subtree.
    const int slot = static_cast<int>((vaddr >> 39) & 0x1ff);
    machine_->paging().write_pml4_entry(
        active_root, slot, machine_->paging().read_pml4_entry(cr3_, slot));
  }
  return Status::ok();
}

void Nautilus::page_fault_handler(hw::Core& core,
                                  const hw::InterruptFrame& frame) {
  const std::uint64_t vaddr = frame.fault_addr;

  if (hw::is_higher_half(vaddr)) {
    // Lazy extension of the identity map (real Nautilus maps this eagerly
    // with huge pages; the visible semantics are identical).
    (void)map_higher_half_page(vaddr, core.cr3());
    return;
  }

  // Lower half: the ROS portion of the merged address space. "We added a
  // check in the page fault handler to look for ROS virtual addresses and
  // forward them appropriately over an event channel."
  NautThread* thread = current_thread();
  if (thread == nullptr || thread->channel == nullptr || !merged_) {
    MV_WARN("naut", strfmt("unforwardable #PF at %#llx on core %u",
                           static_cast<unsigned long long>(vaddr), core.id()));
    return;
  }

  // Repeat-fault detection: if the same address faults twice in a row, the
  // ROS likely installed a *new* top-level (PML4) entry we cannot see;
  // re-merge and retry.
  auto& last = last_fault_[core.id()];
  if (last == vaddr) {
    if (thread->cr3 != 0) {
      // Tenant thread: the new PML4 entry lives in the tenant process's
      // page tables, so re-merge the tenant's own root from its CR3.
      (void)remerge_root(thread->cr3, thread->tenant_ros_cr3);
      ++remerges_;
    } else {
      (void)remerge();
    }
    last = 0;
    return;
  }
  last = vaddr;

  MV_TRACE_SCOPE(core.id(), "guest", "page_fault_forward");
  ++forwarded_faults_;
  (void)thread->channel->forward_fault(vaddr, frame.error_code);
}

Status Nautilus::do_merge_from_comm_page() {
  const std::uint64_t ros_cr3 = hvm_->comm_read(vmm::CommPage::kOffRosCr3);
  ros_cr3_ = ros_cr3;
  MV_RETURN_IF_ERROR(remerge());
  merged_ = true;
  hvm_->comm_write(vmm::CommPage::kOffRetCode, 0);
  // Signal completion to the VMM.
  return hvm_->hypercall(boot_core(), vmm::Hypercall::kHrtDone).status();
}

Status Nautilus::remerge() {
  MV_RETURN_IF_ERROR(remerge_root(cr3_, ros_cr3_));
  if (merged_) ++remerges_;
  return Status::ok();
}

Status Nautilus::remerge_root(std::uint64_t dst_root, std::uint64_t src_cr3) {
  if (src_cr3 == 0) return err(Err::kState, "no ROS CR3 recorded");
  hw::Core& core = machine_->core(boot_core());
  // "Copying the first 256 entries of the PML4 pointed to by the ROS's CR3
  // to the HRT's PML4 and then broadcasting a TLB shootdown to all HRT
  // cores."
  for (int i = 0; i < hw::kUserPml4Entries; ++i) {
    const std::uint64_t entry =
        machine_->paging().read_pml4_entry(src_cr3, i);
    machine_->paging().write_pml4_entry(dst_root, i, entry);
    core.charge(hw::costs().pml4_entry_copy);
  }
  // The initiating core flushes locally as part of the PML4 copy; putting it
  // in its own target list double-charged a full IPI round per merge.
  std::vector<unsigned> others;
  for (const unsigned c : boot_info_.hrt_cores) {
    if (c != boot_core()) others.push_back(c);
  }
  machine_->tlb_shootdown(boot_core(), others, /*vaddr=*/0);
  return Status::ok();
}

Result<std::uint64_t> Nautilus::boot_tenant(std::uint64_t ros_cr3) {
  if (!booted_) return err(Err::kState, "boot_tenant before boot");
  if (ros_cr3 == 0) return err(Err::kInval, "boot_tenant with no ROS CR3");
  hw::Core& core = machine_->core(boot_core());
  MV_ASSIGN_OR_RETURN(const std::uint64_t root, machine_->paging().new_root());
  // Sparse stamp: walk both template PML4s (the tenant process's CR3 for the
  // user half, the boot root for the shared higher half) and copy only the
  // present entries. Reading a slot is one memory access; copying one is the
  // modeled PML4-entry copy. A sparse address space stamps in a few dozen
  // entries — microseconds against the ~2.2 ms firmware + kernel-init boot.
  for (int i = 0; i < hw::kPml4Entries; ++i) {
    const std::uint64_t src = i < hw::kUserPml4Entries ? ros_cr3 : cr3_;
    core.charge(hw::costs().mem_access);
    const std::uint64_t entry = machine_->paging().read_pml4_entry(src, i);
    if (entry != 0) {
      machine_->paging().write_pml4_entry(root, i, entry);
      core.charge(hw::costs().pml4_entry_copy);
    }
  }
  return root;
}

void Nautilus::drop_tenant_root(std::uint64_t root) {
  if (root == 0 || root == cr3_) return;
  // Every PML4 entry is borrowed (user half from the tenant process, higher
  // half from the boot root): zero them so free_hierarchy releases only the
  // root frame itself.
  for (int i = 0; i < hw::kPml4Entries; ++i) {
    machine_->paging().write_pml4_entry(root, i, 0);
  }
  machine_->paging().free_hierarchy(root);
  for (const unsigned c : boot_info_.hrt_cores) {
    hw::Core& core = machine_->core(c);
    if (core.cr3() == root) core.write_cr3(cr3_);
  }
}

void Nautilus::detach_channel(LegacyChannel* channel) {
  for (const auto& t : threads_) {
    if (t->channel == channel) t->channel = nullptr;
  }
}

Status Nautilus::on_hvm_event(vmm::HrtEventKind kind) {
  machine_->core(boot_core()).charge(hw::costs().page_fault_vector);
  switch (kind) {
    case vmm::HrtEventKind::kMerge:
      return do_merge_from_comm_page();
    case vmm::HrtEventKind::kFunctionCall: {
      const std::uint64_t func = hvm_->comm_read(vmm::CommPage::kOffFuncPtr);
      const std::uint64_t arg = hvm_->comm_read(vmm::CommPage::kOffFuncArg);
      // Placement hint (1 + core, 0 = kernel's choice), consumed per request
      // so a stale hint never leaks into an unrelated call.
      const std::uint64_t core_hint =
          hvm_->comm_read(vmm::CommPage::kOffFuncCore);
      hvm_->comm_write(vmm::CommPage::kOffFuncCore, 0);
      const auto it = functions_.find(func);
      if (it == functions_.end()) {
        hvm_->comm_write(vmm::CommPage::kOffRetCode,
                         static_cast<std::uint64_t>(-1));
        return err(Err::kNoEnt, "async call to unbound HRT function");
      }
      // Asynchronous invocation: runs in a fresh top-level AeroKernel thread.
      auto fn = it->second;
      MV_ASSIGN_OR_RETURN(
          NautThread* const thread,
          thread_create([fn, arg]() { (void)fn(arg); }, /*nested=*/false,
                        /*channel=*/nullptr, "hrt-async-call",
                        core_hint == 0 ? -1
                                       : static_cast<int>(core_hint - 1)));
      hvm_->comm_write(vmm::CommPage::kOffRetCode,
                       static_cast<std::uint64_t>(thread->id));
      return Status::ok();
    }
    case vmm::HrtEventKind::kReboot:
    case vmm::HrtEventKind::kNone:
      break;
  }
  return err(Err::kInval, "unknown HVM event");
}

void Nautilus::bind_function(std::uint64_t hrt_vaddr,
                             std::function<std::uint64_t(std::uint64_t)> fn) {
  functions_[hrt_vaddr] = std::move(fn);
}

void Nautilus::unbind_function(std::uint64_t hrt_vaddr) {
  functions_.erase(hrt_vaddr);
}

Result<std::uint64_t> Nautilus::call_function(std::uint64_t hrt_vaddr,
                                              std::uint64_t arg) {
  const auto it = functions_.find(hrt_vaddr);
  if (it == functions_.end()) {
    return err(Err::kNoEnt, "call to unbound HRT function");
  }
  machine_->core(boot_core()).charge(hw::costs().reg_op * 12);
  return it->second(arg);
}

Result<NautThread*> Nautilus::thread_create(std::function<void()> body,
                                            bool nested,
                                            LegacyChannel* channel,
                                            std::string name,
                                            int pinned_core) {
  if (!booted_) return err(Err::kState, "thread_create before boot");
  auto thread = std::make_unique<NautThread>();
  thread->id = next_thread_id_++;
  // Explicit pin wins when it names an HRT core; otherwise threads place
  // round-robin across the HRT partition.
  bool pinned = false;
  if (pinned_core >= 0) {
    for (const unsigned c : boot_info_.hrt_cores) {
      if (c == static_cast<unsigned>(pinned_core)) {
        thread->core = c;
        pinned = true;
        break;
      }
    }
  }
  if (!pinned) {
    thread->core = boot_info_.hrt_cores[static_cast<std::size_t>(thread->id) %
                                        boot_info_.hrt_cores.size()];
  }
  thread->nested = nested;
  thread->channel = channel;
  // Nested threads run in their creator's tenant address space; top-level
  // threads start on the boot root until the runtime stamps a tenant root.
  if (NautThread* creator = current_thread()) {
    thread->cr3 = creator->cr3;
    thread->tenant_ros_cr3 = creator->tenant_ros_cr3;
  }
  NautThread* raw = thread.get();
  threads_.push_back(std::move(thread));

  machine_->core(raw->core).charge(hw::costs().naut_thread_spawn);
  raw->task = sched_->spawn(
      raw->core,
      [this, raw, body = std::move(body)]() {
        body();
        raw->exited = true;
        for (const TaskId waiter : raw->joiners) sched_->unblock(waiter);
        raw->joiners.clear();
        if (!raw->nested && raw->channel != nullptr) {
          // "When an HRT thread exits, it signals the ROS of the exit event."
          raw->channel->notify_thread_exit(raw->id);
        }
        task_threads_.erase(raw->task);
      },
      std::move(name));
  task_threads_[raw->task] = raw;
  return raw;
}

Status Nautilus::thread_join(int id) {
  NautThread* target = nullptr;
  for (const auto& t : threads_) {
    if (t->id == id) target = t.get();
  }
  if (target == nullptr) return err(Err::kNoEnt, "join: no such HRT thread");
  const TaskId self = sched_->current();
  bool queued = false;
  while (!target->exited) {
    // Enqueue once per blocked episode: the exit path clears the list, but a
    // spurious wake must not add a duplicate entry.
    if (!queued) {
      target->joiners.push_back(self);
      queued = true;
    }
    sched_->block();
    queued = std::find(target->joiners.begin(), target->joiners.end(), self) !=
             target->joiners.end();
  }
  if (queued) {
    target->joiners.erase(
        std::remove(target->joiners.begin(), target->joiners.end(), self),
        target->joiners.end());
  }
  return Status::ok();
}

NautThread* Nautilus::current_thread() {
  const auto it = task_threads_.find(sched_->current());
  return it == task_threads_.end() ? nullptr : it->second;
}

const NautThread* Nautilus::find_thread(int id) const {
  for (const auto& t : threads_) {
    if (t->id == id) return t.get();
  }
  return nullptr;
}

std::size_t Nautilus::live_threads_on(unsigned core) const {
  std::size_t live = 0;
  for (const auto& t : threads_) {
    if (!t->exited && t->core == core) ++live;
  }
  return live;
}

int Nautilus::event_create() {
  events_.push_back(false);
  return static_cast<int>(events_.size() - 1);
}

Status Nautilus::event_wait(int event) {
  if (event < 0 || static_cast<std::size_t>(event) >= events_.size()) {
    return err(Err::kInval, "bad event");
  }
  while (!events_[static_cast<std::size_t>(event)]) {
    event_waiters_[event].push_back(sched_->current());
    sched_->block();
  }
  events_[static_cast<std::size_t>(event)] = false;  // auto-reset
  return Status::ok();
}

Status Nautilus::event_signal(int event) {
  if (event < 0 || static_cast<std::size_t>(event) >= events_.size()) {
    return err(Err::kInval, "bad event");
  }
  machine_->core(boot_core()).charge(hw::costs().naut_event_signal);
  events_[static_cast<std::size_t>(event)] = true;
  auto it = event_waiters_.find(event);
  if (it != event_waiters_.end()) {
    for (const TaskId waiter : it->second) sched_->unblock(waiter);
    it->second.clear();
  }
  return Status::ok();
}

Result<std::uint64_t> Nautilus::kmalloc(std::uint64_t bytes) {
  MV_ASSIGN_OR_RETURN(const std::uint64_t paddr, hvm_->hrt_alloc(bytes));
  return boot_info_.higher_half_base + paddr;
}

Result<std::uint64_t> Nautilus::syscall_stub(
    ros::SysNr nr, std::array<std::uint64_t, 6> args) {
  NautThread* thread = current_thread();
  hw::Core& core =
      machine_->core(thread != nullptr ? thread->core : boot_core());
  MV_TRACE_SCOPE(core.id(), "guest", sysnr_name(nr));

  // Ring-0 SYSCALL works ("SYSCALL has no problem making this idempotent
  // ring transition")...
  core.charge(hw::costs().syscall_insn);
  // ...and the stub pulls the stack pointer down 128 bytes so the red zone
  // of the interrupted compilation unit survives (SYSCALL cannot use IST).
  core.charge(hw::costs().reg_op * 4);

  // "We must prohibit the ROS code executing in HRT context from leveraging
  // certain functionality": calls that create execution contexts or rely on
  // the Linux execution model.
  switch (nr) {
    case ros::SysNr::kExecve:
    case ros::SysNr::kClone:
    case ros::SysNr::kFork:
    case ros::SysNr::kFutex:
      return err(Err::kNoSys,
                 strfmt("%s is disallowed in HRT context", sysnr_name(nr)));
    default:
      break;
  }

  if (thread == nullptr || thread->channel == nullptr) {
    return err(Err::kState, "syscall from HRT context with no event channel");
  }
  ++forwarded_syscalls_;
  auto result = thread->channel->forward_syscall(nr, args);

  // "...but SYSRET will not allow it. The return to ring 3 is unconditional
  // for SYSRET. To work around this issue, we must emulate SYSRET and
  // execute a direct jmp to the saved rip stashed during the SYSCALL."
  if (!config_.emulate_sysret) {
    return err(Err::kState, "SYSRET to ring 0 raises #GP (emulation disabled)");
  }
  core.charge(hw::costs().sysret_emulated);
  return result;
}

std::vector<Result<std::uint64_t>> Nautilus::syscall_stub_batch(
    const std::vector<ros::SysReq>& reqs) {
  NautThread* thread = current_thread();
  hw::Core& core =
      machine_->core(thread != nullptr ? thread->core : boot_core());

  // One ring-0 SYSCALL entry (and one red-zone pulldown) amortized over the
  // whole batch — that is what the batch path buys on the stub side.
  core.charge(hw::costs().syscall_insn);
  core.charge(hw::costs().reg_op * 4);
  MV_TRACE_SCOPE(core.id(), "guest", "syscall_batch");

  std::vector<Result<std::uint64_t>> out;
  out.reserve(reqs.size());
  std::vector<ros::SysReq> allowed;
  std::vector<std::size_t> allowed_at;
  for (const ros::SysReq& req : reqs) {
    switch (req.nr) {
      case ros::SysNr::kExecve:
      case ros::SysNr::kClone:
      case ros::SysNr::kFork:
      case ros::SysNr::kFutex:
        out.push_back(err(Err::kNoSys,
                          strfmt("%s is disallowed in HRT context",
                                 sysnr_name(req.nr))));
        break;
      default:
        allowed_at.push_back(out.size());
        allowed.push_back(req);
        out.push_back(err(Err::kAgain, "batch entry pending"));
        break;
    }
  }

  if (!allowed.empty()) {
    if (thread == nullptr || thread->channel == nullptr) {
      for (const std::size_t at : allowed_at) {
        out[at] = err(Err::kState,
                      "syscall from HRT context with no event channel");
      }
    } else {
      forwarded_syscalls_ += allowed.size();
      auto fwd = thread->channel->forward_syscall_batch(allowed);
      for (std::size_t i = 0; i < allowed_at.size() && i < fwd.size(); ++i) {
        out[allowed_at[i]] = std::move(fwd[i]);
      }
    }
  }

  if (!config_.emulate_sysret) {
    for (auto& r : out) {
      r = err(Err::kState,
              "SYSRET to ring 0 raises #GP (emulation disabled)");
    }
    return out;
  }
  core.charge(hw::costs().sysret_emulated);
  return out;
}

// Lazily activate the current thread's address-space root: a tenant thread
// scheduled onto a core another tenant last used must run on its own root.
// Single-tenant threads keep cr3 == 0 and the core already holds the boot
// root, so the write (a real CR3 load: register ops plus a TLB flush) only
// ever happens — and is only ever charged — on actual tenant switches.
hw::Core& Nautilus::activated_core(NautThread* t) {
  hw::Core& core = machine_->core(t != nullptr ? t->core : boot_core());
  const std::uint64_t want = (t != nullptr && t->cr3 != 0) ? t->cr3 : cr3_;
  if (core.cr3() != want) core.write_cr3(want);
  return core;
}

Status Nautilus::hrt_mem_read(std::uint64_t vaddr, void* out,
                              std::uint64_t len) {
  hw::Core& core = activated_core(current_thread());
  return core.mem_read(vaddr, out, len);
}

Status Nautilus::hrt_mem_write(std::uint64_t vaddr, const void* in,
                               std::uint64_t len) {
  hw::Core& core = activated_core(current_thread());
  return core.mem_write(vaddr, in, len);
}

Status Nautilus::hrt_mem_touch(std::uint64_t vaddr, hw::Access access) {
  hw::Core& core = activated_core(current_thread());
  return core.mem_touch(vaddr, access);
}

}  // namespace mv::naut
