#include "aerokernel/symbols.hpp"

namespace mv::naut {

void SymbolTable::load(const vmm::HrtImage& image, std::uint64_t base_vaddr) {
  symbols_.clear();
  cache_.clear();
  for (const auto& sym : image.symbols()) {
    symbols_.push_back(Entry{sym.name, base_vaddr + sym.offset});
  }
}

Result<std::uint64_t> SymbolTable::resolve(hw::Core& core,
                                           std::string_view name) {
  ++lookups_;
  if (cache_enabled_) {
    const auto it = cache_.find(std::string(name));
    if (it != cache_.end()) {
      ++cache_hits_;
      core.charge(hw::costs().mem_access * 4);  // hash probe
      return it->second;
    }
  }
  // Linear scan with a string compare per entry — the "non-trivial overhead"
  // the paper describes for per-invocation lookups.
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    core.charge(hw::costs().mem_access * 3 + symbols_[i].name.size() / 8);
    if (symbols_[i].name == name) {
      if (cache_enabled_) cache_[symbols_[i].name] = symbols_[i].vaddr;
      return symbols_[i].vaddr;
    }
  }
  return err(Err::kNoEnt, "unresolved AeroKernel symbol: " + std::string(name));
}

}  // namespace mv::naut
