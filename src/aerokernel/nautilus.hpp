#pragma once

// Nautilus: the AeroKernel. Runs entirely in ring 0 on the HRT core
// partition. Provides lightweight threads and events, a higher-half
// identity-mapped address space, the Multiverse additions from the paper's
// Sec 4.4: a page-fault handler that forwards ROS-half faults over an event
// channel (with repeat-fault detection that re-merges the PML4), a syscall
// stub that forwards to the ROS and emulates SYSRET's disallowed ring-0 ->
// ring-0 return, IST stacks so interrupts cannot destroy red zones, and the
// CR0.WP fix that makes ring-0 copy-on-write faults visible.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "aerokernel/symbols.hpp"
#include "hw/machine.hpp"
#include "ros/types.hpp"
#include "support/result.hpp"
#include "support/sched.hpp"
#include "vmm/hvm.hpp"

namespace mv::naut {

// The channel a Nautilus thread uses to reach legacy (ROS) functionality.
// Implemented by Multiverse's execution-group partner machinery.
class LegacyChannel {
 public:
  virtual ~LegacyChannel() = default;
  virtual Result<std::uint64_t> forward_syscall(
      ros::SysNr nr, std::array<std::uint64_t, 6> args) = 0;
  // Forward several independent syscalls; results in submission order. The
  // default loops over forward_syscall; channels with a submission ring
  // override it to stage the whole batch and flush one doorbell.
  virtual std::vector<Result<std::uint64_t>> forward_syscall_batch(
      const std::vector<ros::SysReq>& reqs) {
    std::vector<Result<std::uint64_t>> out;
    out.reserve(reqs.size());
    for (const ros::SysReq& req : reqs) {
      out.push_back(forward_syscall(req.nr, req.args));
    }
    return out;
  }
  // Forward a page fault on a ROS-half address; returns OK once the ROS has
  // repaired the mapping (the access is then retried).
  virtual Status forward_fault(std::uint64_t vaddr,
                               std::uint32_t error_code) = 0;
  // HRT thread exit notification (flips the partner's completion bit).
  virtual void notify_thread_exit(int hrt_tid) = 0;
};

struct NautThread {
  int id = 0;
  unsigned core = 0;
  TaskId task = kNoTask;
  bool nested = false;
  bool exited = false;
  LegacyChannel* channel = nullptr;  // inherited by nested threads
  std::uint64_t fs_base = 0;         // superposed ROS TLS state
  // Per-tenant address-space root (0 = the kernel's boot root). Stamped by
  // the Multiverse runtime on a tenant's top-level threads and inherited by
  // nested threads; the kernel lazily activates it on memory access.
  std::uint64_t cr3 = 0;
  std::uint64_t tenant_ros_cr3 = 0;  // the owning tenant process's CR3
  std::vector<TaskId> joiners;
};

class Nautilus final : public vmm::HrtKernelIface {
 public:
  struct Config {
    // The paper's fix: enforce write faults in ring 0 so COW and GC barriers
    // work. Disabling this reproduces the "mysterious memory corruption".
    bool enforce_cr0_wp = true;
    // Emulate SYSRET with a direct jmp (SYSRET cannot return to ring 0).
    bool emulate_sysret = true;
  };

  Nautilus(hw::Machine& machine, Sched& sched, vmm::Hvm& hvm, Config config);
  Nautilus(hw::Machine& machine, Sched& sched, vmm::Hvm& hvm)
      : Nautilus(machine, sched, hvm, Config{}) {}

  // --- HrtKernelIface -------------------------------------------------------
  Status boot(const vmm::BootInfo& info) override;
  void reboot() override;
  Status on_hvm_event(vmm::HrtEventKind kind) override;
  // Cached-image tenant boot (kBootTenant): stamp a fresh PML4 whose user
  // half merges `ros_cr3` and whose higher half shares the boot root's
  // subtrees copy-on-write. No firmware bring-up, no image reinstall — the
  // sparse stamp plus one hypercall round trip is the entire cost.
  Result<std::uint64_t> boot_tenant(std::uint64_t ros_cr3) override;

  [[nodiscard]] bool booted() const noexcept { return booted_; }
  [[nodiscard]] std::uint64_t root_cr3() const noexcept { return cr3_; }
  [[nodiscard]] unsigned boot_core() const {
    return boot_info_.hrt_cores.front();
  }
  [[nodiscard]] const vmm::BootInfo& boot_info() const noexcept {
    return boot_info_;
  }
  [[nodiscard]] SymbolTable& symbols() noexcept { return symbols_; }
  [[nodiscard]] std::uint64_t image_base_vaddr() const noexcept {
    return boot_info_.higher_half_base + boot_info_.image_base_paddr;
  }

  // --- function registry -----------------------------------------------------
  // Registers kernel behaviour under an HRT virtual address (normally the
  // address of an image symbol). The HVM function-call event and the
  // override layer dispatch through this.
  void bind_function(std::uint64_t hrt_vaddr,
                     std::function<std::uint64_t(std::uint64_t)> fn);
  // Drop a binding again (one-shot trampolines, e.g. per-invocation launch
  // stubs, would otherwise accumulate in the registry for the kernel's
  // lifetime). Unknown addresses are ignored.
  void unbind_function(std::uint64_t hrt_vaddr);
  Result<std::uint64_t> call_function(std::uint64_t hrt_vaddr,
                                      std::uint64_t arg);
  [[nodiscard]] std::size_t bound_function_count() const noexcept {
    return functions_.size();
  }

  // --- threads (the paper: primitives that "outperform Linux by orders of
  // --- magnitude") -----------------------------------------------------------
  // `pinned_core` >= 0 requests placement on that HRT core (used by the
  // Multiverse runtime's execution-group placement policies); -1 keeps the
  // kernel's round-robin. A pin outside the HRT partition falls back to
  // round-robin rather than placing a kernel thread on a ROS core.
  Result<NautThread*> thread_create(std::function<void()> body, bool nested,
                                    LegacyChannel* channel, std::string name,
                                    int pinned_core = -1);
  Status thread_join(int id);
  [[nodiscard]] NautThread* current_thread();
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return threads_.size();
  }
  [[nodiscard]] const NautThread* find_thread(int id) const;
  // Live (non-exited) kernel threads currently placed on `core`.
  [[nodiscard]] std::size_t live_threads_on(unsigned core) const;

  // --- events ------------------------------------------------------------------
  int event_create();
  Status event_wait(int event);
  Status event_signal(int event);

  // --- kernel heap ----------------------------------------------------------------
  // Bump allocator over HRT-private memory; returns kernel virtual addresses.
  Result<std::uint64_t> kmalloc(std::uint64_t bytes);

  // --- Multiverse additions ---------------------------------------------------
  // Ring-0 SYSCALL entry: the stub the paper added. Forwards to the current
  // thread's legacy channel; refuses the disallowed calls (execve, clone,
  // fork, futex).
  Result<std::uint64_t> syscall_stub(ros::SysNr nr,
                                     std::array<std::uint64_t, 6> args);

  // Batched stub entry: one SYSCALL/SYSRET pair covers the whole batch; the
  // disallowed-call filter still applies per request, and allowed requests
  // forward as one channel batch.
  std::vector<Result<std::uint64_t>> syscall_stub_batch(
      const std::vector<ros::SysReq>& reqs);

  // Explicit PML4 re-merge from the stored ROS CR3 (repeat-fault path).
  Status remerge();
  // Tenant teardown: free a root minted by boot_tenant (every PML4 entry is
  // borrowed — user half from the tenant process, higher half from the boot
  // root — so only the root frame itself is released) and repoint any HRT
  // core still running on it back to the boot root.
  void drop_tenant_root(std::uint64_t root);
  // Null every thread's reference to a channel about to be destroyed, so a
  // stale slot in the threads_ table can never forward into freed memory.
  void detach_channel(LegacyChannel* channel);
  [[nodiscard]] bool merged() const noexcept { return merged_; }
  [[nodiscard]] std::uint64_t merged_ros_cr3() const noexcept {
    return ros_cr3_;
  }
  [[nodiscard]] std::uint64_t remerge_count() const noexcept {
    return remerges_;
  }
  [[nodiscard]] std::uint64_t forwarded_faults() const noexcept {
    return forwarded_faults_;
  }
  [[nodiscard]] std::uint64_t forwarded_syscalls() const noexcept {
    return forwarded_syscalls_;
  }

  // Memory access from HRT context (ring 0, HRT CR3, faults vector to the
  // Nautilus handler which forwards ROS-half faults).
  Status hrt_mem_read(std::uint64_t vaddr, void* out, std::uint64_t len);
  Status hrt_mem_write(std::uint64_t vaddr, const void* in, std::uint64_t len);
  Status hrt_mem_touch(std::uint64_t vaddr, hw::Access access);

 private:
  [[nodiscard]] std::size_t live_thread_count_internal() const;
  // Resolve the core `t` runs on and lazily load its tenant root (or the
  // boot root) into CR3 when the core last ran a different tenant.
  hw::Core& activated_core(NautThread* t);
  void install_idt();
  void page_fault_handler(hw::Core& core, const hw::InterruptFrame& frame);
  Status do_merge_from_comm_page();
  // Copy the user half of `src_cr3`'s PML4 into `dst_root` and shoot down
  // the other HRT cores (the paper's merge, parameterized by root for
  // per-tenant re-merges).
  Status remerge_root(std::uint64_t dst_root, std::uint64_t src_cr3);
  // Lazily extend the higher-half identity map (real Nautilus uses huge
  // pages; we materialize 4 KiB mappings on first touch). All page tables
  // land under the boot root; `active_root` (the faulting core's CR3) only
  // gets the PML4 slot refreshed when it is a tenant root, so tenant roots
  // never own higher-half subtrees.
  Status map_higher_half_page(std::uint64_t vaddr, std::uint64_t active_root);

  hw::Machine* machine_;
  Sched* sched_;
  vmm::Hvm* hvm_;
  Config config_;
  vmm::BootInfo boot_info_;
  bool booted_ = false;
  std::uint64_t cr3_ = 0;
  std::uint64_t heap_bump_ = 0;
  std::uint64_t heap_end_ = 0;
  SymbolTable symbols_;

  std::map<std::uint64_t, std::function<std::uint64_t(std::uint64_t)>>
      functions_;
  std::vector<std::unique_ptr<NautThread>> threads_;
  std::map<TaskId, NautThread*> task_threads_;
  int next_thread_id_ = 1;
  std::vector<bool> events_;  // event id -> signaled
  std::map<int, std::vector<TaskId>> event_waiters_;

  bool merged_ = false;
  std::uint64_t ros_cr3_ = 0;
  std::uint64_t remerges_ = 0;
  std::uint64_t forwarded_faults_ = 0;
  std::uint64_t forwarded_syscalls_ = 0;
  // Repeat-fault detection, per core: last faulting address seen.
  std::map<unsigned, std::uint64_t> last_fault_;
};

}  // namespace mv::naut
