// mvtrace: an strace for the simulated stack — the tool you point at a
// hybridized program to see exactly which legacy functionality it still
// leans on (the measurement behind the paper's Figs 11 and 12, and step 3 of
// the subtractive porting loop).
//
//   mvtrace [native|hybrid] [startup|bintree|fasta]
//
// Set MV_TRACE_OUT=/path/prefix to additionally export a cycle-domain
// chrome://tracing JSON of the run (open in chrome://tracing or Perfetto);
// timestamps are simulated cycles, one track per simulated core.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "multiverse/system.hpp"
#include "runtime/scheme/engine.hpp"
#include "runtime/scheme/programs.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

using namespace mv;
using namespace mv::multiverse;

namespace {

std::string workload_source(const char* which) {
  if (std::strcmp(which, "bintree") == 0) {
    return scheme::benchmark_source(scheme::Bench::kBinaryTrees, 7);
  }
  if (std::strcmp(which, "fasta") == 0) {
    return scheme::benchmark_source(scheme::Bench::kFasta, 150);
  }
  return "";  // startup only
}

void print_event(const ros::Process::SyscallEvent& e) {
  std::string args;
  // Print the leading arguments like strace: hex for pointery values.
  for (int i = 0; i < 3; ++i) {
    if (i) args += ", ";
    if (e.args[static_cast<std::size_t>(i)] > 0xffff) {
      args += strfmt("0x%llx", static_cast<unsigned long long>(
                                   e.args[static_cast<std::size_t>(i)]));
    } else {
      args += strfmt("%llu", static_cast<unsigned long long>(
                                 e.args[static_cast<std::size_t>(i)]));
    }
  }
  if (e.error == Err::kOk) {
    std::printf("%s[tid %d] %s(%s) = %llu\n", e.forwarded ? "[HRT>] " : "",
                e.tid, ros::sysnr_name(e.nr), args.c_str(),
                static_cast<unsigned long long>(e.result));
  } else {
    std::printf("%s[tid %d] %s(%s) = -1 %s\n", e.forwarded ? "[HRT>] " : "",
                e.tid, ros::sysnr_name(e.nr), args.c_str(), err_name(e.error));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* mode = argc > 1 ? argv[1] : "hybrid";
  const char* which = argc > 2 ? argv[2] : "startup";
  const bool hybrid = std::strcmp(mode, "hybrid") == 0;
  const std::string src = workload_source(which);

  std::printf("== mvtrace: %s run of '%s' ==\n\n", mode, which);

  const char* trace_out = std::getenv("MV_TRACE_OUT");
  if (trace_out != nullptr) Tracer::instance().enable();

  SystemConfig cfg;
  cfg.virtualized = hybrid;
  HybridSystem system(cfg);
  if (!scheme::install_boot_files(system.linux().fs()).is_ok()) return 1;

  ros::LinuxSim* kernel = &system.linux();
  auto guest = [kernel, src](ros::SysIface& sys) {
    // Arm the tracer from inside the guest, before the engine starts.
    kernel->processes().front()->syscall_trace_enabled = true;
    scheme::Engine engine(sys);
    if (!engine.init().is_ok()) return 70;
    if (!src.empty()) {
      auto r = engine.eval_string(src);
      (void)engine.flush();
      if (!r) return 1;
    }
    return 0;
  };
  auto result = hybrid ? system.run_hybrid("traced", guest)
                       : system.run("traced", guest);
  if (!result) {
    std::printf("run failed: %s\n", result.status().to_string().c_str());
    return 1;
  }

  const auto& trace = kernel->processes().front()->syscall_trace;
  std::printf("--- first 25 events ---\n");
  for (std::size_t i = 0; i < trace.size() && i < 25; ++i) {
    print_event(trace[i]);
  }
  if (trace.size() > 25) {
    std::printf("... (%zu more)\n", trace.size() - 25);
  }

  std::printf("\n--- histogram (%zu events, %llu forwarded) ---\n",
              trace.size(),
              static_cast<unsigned long long>(std::count_if(
                  trace.begin(), trace.end(),
                  [](const auto& e) { return e.forwarded; })));
  std::map<std::string, std::uint64_t> hist;
  for (const auto& e : trace) ++hist[ros::sysnr_name(e.nr)];
  std::vector<std::pair<std::string, std::uint64_t>> rows(hist.begin(),
                                                          hist.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [name, count] : rows) {
    std::printf("%8llu  %s\n", static_cast<unsigned long long>(count),
                name.c_str());
  }

  if (trace_out != nullptr) {
    Tracer& tracer = Tracer::instance();
    tracer.disable();
    const std::string path = strfmt("%s.%s.%s.json", trace_out, mode, which);
    const Status s = tracer.write_chrome_json(path);
    if (!s.is_ok()) {
      std::printf("trace export failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("\nwrote chrome://tracing JSON: %s (%zu events)\n",
                path.c_str(), tracer.event_count());
  }
  return 0;
}
