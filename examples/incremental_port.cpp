// The subtractive porting workflow Multiverse enables (Secs 1, 3.3, 5):
//
//   1. recompile the unmodified runtime with the Multiverse toolchain
//   2. run it hybridized; it works immediately (incremental model)
//   3. profile which legacy interfaces dominate the event channel
//   4. override the hot ones with AeroKernel implementations
//   5. measure the win; repeat
//
// This example executes the whole loop for the Vessel Scheme runtime on the
// GC-heavy binary-tree-2 benchmark, mirroring the paper's conclusion: "The
// next steps would be to port bottleneck functionality, for example the
// mmap(), mprotect(), and signal mechanisms the garbage collector depends
// on, to kernel mode via AeroKernel, perhaps using AeroKernel overrides."

#include <algorithm>
#include <cstdio>
#include <vector>

#include "multiverse/system.hpp"
#include "runtime/scheme/engine.hpp"
#include "runtime/scheme/programs.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace mv;
using namespace mv::multiverse;

namespace {

Result<ProgramResult> run_hybrid_bench(const std::string& overrides) {
  SystemConfig cfg;
  cfg.extra_override_config = overrides;
  HybridSystem system(cfg);
  MV_RETURN_IF_ERROR(scheme::install_boot_files(system.linux().fs()));
  const std::string src =
      scheme::benchmark_source(scheme::Bench::kBinaryTrees, 8);
  return system.run_hybrid("binary-tree-2", [&src](ros::SysIface& sys) {
    return scheme::vessel_main(sys, src, /*use_launcher_thread=*/false);
  });
}

}  // namespace

int main() {
  std::printf("== Incremental porting walkthrough (binary-tree-2) ==\n\n");

  // Step 1-2: hybridize with no effort, run as-is.
  auto baseline = run_hybrid_bench("");
  if (!baseline) {
    std::printf("baseline failed: %s\n",
                baseline.status().to_string().c_str());
    return 1;
  }
  std::printf("step 1-2: unmodified runtime hybridized and ran "
              "(exit %d, %.1f ms simulated)\n\n",
              baseline->exit_code, baseline->elapsed_s * 1e3);

  // Step 3: profile the legacy interface.
  std::printf("step 3: legacy-interface profile (forwarded to the ROS):\n");
  std::vector<std::pair<std::string, std::uint64_t>> hot(
      baseline->syscall_histogram.begin(), baseline->syscall_histogram.end());
  std::sort(hot.begin(), hot.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  Table table({"syscall", "count"});
  for (std::size_t i = 0; i < hot.size() && i < 6; ++i) {
    table.add_row({hot[i].first, std::to_string(hot[i].second)});
  }
  table.print();
  std::printf("  -> the GC's memory management dominates, as in paper Fig 12\n\n");

  // Step 4-5: override the hot spots with AeroKernel variants.
  auto ported = run_hybrid_bench(
      "override mmap nk_mmap\n"
      "override munmap nk_munmap\n"
      "override mprotect nk_mprotect\n");
  if (!ported) {
    std::printf("ported run failed: %s\n",
                ported.status().to_string().c_str());
    return 1;
  }
  const auto count_of = [](const ProgramResult& r, const char* name) {
    const auto it = r.syscall_histogram.find(name);
    return it == r.syscall_histogram.end() ? std::uint64_t{0} : it->second;
  };
  std::printf("step 4-5: after overriding mmap/munmap/mprotect:\n");
  Table after({"metric", "incremental", "with overrides"});
  after.add_row({"simulated runtime (ms)",
                 strfmt("%.1f", baseline->elapsed_s * 1e3),
                 strfmt("%.1f", ported->elapsed_s * 1e3)});
  after.add_row({"mmap forwarded", std::to_string(count_of(*baseline, "mmap")),
                 std::to_string(count_of(*ported, "mmap"))});
  after.add_row({"munmap forwarded",
                 std::to_string(count_of(*baseline, "munmap")),
                 std::to_string(count_of(*ported, "munmap"))});
  after.add_row({"mprotect forwarded",
                 std::to_string(count_of(*baseline, "mprotect")),
                 std::to_string(count_of(*ported, "mprotect"))});
  after.add_row({"total forwarded syscalls",
                 std::to_string(baseline->forwarded_syscalls),
                 std::to_string(ported->forwarded_syscalls)});
  after.print();
  std::printf("\nspeedup from this one porting step: %.2fx\n",
              baseline->elapsed_s / ported->elapsed_s);
  std::printf("the developer can now iterate: signals next, then timers...\n");
  return 0;
}
