// AeroKernel overrides: the paper's Figure 5 plus the Sec 3.4 mechanism.
//
// The same user code as the quickstart, but written against pthreads:
//
//   int main() {
//     pthread_t t;
//     pthread_create(&t, NULL, routine, NULL);
//     pthread_join(t, NULL);
//   }
//
// The Multiverse runtime's *default overrides* interpose on the pthread
// calls: pthread_create becomes nk_thread_create (a fresh HRT thread paired
// with a ROS partner), and pthread_join joins the partner. The demo then
// shows a developer-supplied override config moving mmap/mprotect/munmap
// into the AeroKernel (the incremental -> accelerator porting step).

#include <cstdio>

#include "multiverse/system.hpp"

using namespace mv;
using namespace mv::multiverse;

namespace {

void run_fig5() {
  std::printf("-- Fig 5: pthread_create override --\n");
  HybridSystem system;
  auto result = system.run_accelerator(
      "fig5", [](ros::SysIface&, MultiverseRuntime& runtime,
                 ros::Thread& self) {
        // pthread_create -> overridden -> HRT thread (execution group).
        auto group = runtime.hrt_thread_create(self, [](ros::SysIface& s) {
          auto& hrt = static_cast<HrtCtx&>(s);
          auto ret = hrt.aerokernel_call("aerokernel_func", 0);
          (void)s.printf("Result = %d\n", static_cast<int>(ret.value_or(0)));
        });
        if (!group) return 1;
        // pthread_join -> join the partner thread (paper Sec 4.2).
        return runtime.hrt_thread_join(self, *group).is_ok() ? 0 : 1;
      });
  if (!result) {
    std::printf("failed: %s\n", result.status().to_string().c_str());
    return;
  }
  std::printf("%s", result->stdout_text.c_str());
  std::printf("clone count seen by the ROS (partner creation only): %llu\n\n",
              static_cast<unsigned long long>(
                  result->syscall_histogram.count("clone") != 0
                      ? result->syscall_histogram.at("clone")
                      : 0));
}

void run_memop_override_comparison() {
  std::printf("-- Sec 3.4 / Sec 5: overriding the GC's memory hot path --\n");
  const auto workload = [](ros::SysIface& s) {
    for (int i = 0; i < 200; ++i) {
      auto addr = s.mmap(0, 4 * hw::kPageSize, ros::kProtRead | ros::kProtWrite,
                         ros::kMapPrivate | ros::kMapAnonymous);
      if (!addr) return 1;
      std::uint64_t x = static_cast<std::uint64_t>(i);
      (void)s.mem_write(*addr, &x, sizeof(x));
      (void)s.mprotect(*addr, hw::kPageSize, ros::kProtRead);
      (void)s.munmap(*addr, 4 * hw::kPageSize);
    }
    return 0;
  };

  double baseline_s = 0.0;
  {
    HybridSystem system;
    auto r = system.run_hybrid("no-override", workload);
    if (!r) return;
    baseline_s = r->elapsed_s;
    std::printf("forwarded to ROS   : %6.2f ms  (mmap x%llu forwarded)\n",
                baseline_s * 1e3,
                static_cast<unsigned long long>(
                    r->syscall_histogram.count("mmap") != 0
                        ? r->syscall_histogram.at("mmap")
                        : 0));
  }
  {
    SystemConfig cfg;
    cfg.extra_override_config =
        "override mmap nk_mmap\n"
        "override munmap nk_munmap\n"
        "override mprotect nk_mprotect\n";
    HybridSystem system(cfg);
    auto r = system.run_hybrid("with-override", workload);
    if (!r) return;
    std::printf("AeroKernel override: %6.2f ms  (%.1fx faster; \"page table "
                "edits ... hundreds of times faster within the kernel\")\n",
                r->elapsed_s * 1e3, baseline_s / r->elapsed_s);
  }
}

}  // namespace

int main() {
  std::printf("== Multiverse AeroKernel overrides demo ==\n\n");
  std::printf("default override config shipped by the toolchain:\n%s\n",
              default_override_config().c_str());
  run_fig5();
  run_memop_override_comparison();
  return 0;
}
