// Hybridized runtime, identical interface: the paper's core demonstration.
//
// "When compiled and linked for regular Linux, our port provides either a
// REPL interactive interface ... or a command-line batch interface. When
// compiled and linked for HRT use, our port behaves identically."
//
// This example feeds the same scripted REPL session to the Vessel Scheme
// runtime running (a) natively on the ROS and (b) hybridized into the HRT,
// and shows the transcripts are byte-identical — while the hybrid run
// actually executed the runtime in kernel mode on the HRT core.

#include <cstdio>

#include "multiverse/system.hpp"
#include "runtime/scheme/engine.hpp"
#include "runtime/scheme/programs.hpp"

using namespace mv;
using namespace mv::multiverse;

namespace {

const char kSession[] =
    "(define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))\n"
    "(fact 10)\n"
    "(map (lambda (x) (* x x)) '(1 2 3 4 5))\n"
    "(string-append \"hybrid \" \"runtime\")\n"
    ",exit\n";

Result<ProgramResult> run_repl(bool hybrid) {
  SystemConfig cfg;
  cfg.virtualized = hybrid;  // native baseline vs HVM guest
  HybridSystem system(cfg);
  MV_RETURN_IF_ERROR(scheme::install_boot_files(system.linux().fs()));

  auto guest = [](ros::SysIface& sys) {
    return scheme::vessel_main(sys, "", /*use_launcher_thread=*/true);
  };
  // Stage stdin for the process after spawn: easiest is to spawn manually.
  ros::LinuxSim& kernel = system.linux();
  MultiverseRuntime* rt = &system.runtime();
  const std::vector<std::uint8_t>* fat = &system.fat_binary();

  Result<ros::Process*> proc =
      hybrid ? kernel.spawn("vessel-hybrid",
                            [rt, fat, &kernel, guest](ros::SysIface&) -> int {
                              ros::Thread* self = kernel.current_thread();
                              if (!rt->startup(*self, *fat).is_ok()) return 127;
                              int code = 0;
                              (void)rt->hrt_invoke_func(
                                  *self, [&code, guest](ros::SysIface& h) {
                                    code = guest(h);
                                  });
                              (void)rt->shutdown();
                              return code;
                            })
             : kernel.spawn("vessel-native", guest);
  if (!proc) return proc.status();
  (*proc)->stdin_text = kSession;
  MV_RETURN_IF_ERROR(kernel.run_all());

  ProgramResult r;
  r.exit_code = (*proc)->exit_code;
  r.stdout_text = (*proc)->stdout_text;
  r.total_syscalls = (*proc)->total_syscalls;
  return r;
}

}  // namespace

int main() {
  std::printf("== Vessel REPL: native vs hybridized (incremental model) ==\n\n");
  auto native = run_repl(false);
  auto hybrid = run_repl(true);
  if (!native || !hybrid) {
    std::printf("failed: %s %s\n", native.status().to_string().c_str(),
                hybrid.status().to_string().c_str());
    return 1;
  }
  std::printf("-- transcript (native, user-level Linux) --\n%s\n",
              native->stdout_text.c_str());
  std::printf("-- transcript (hybrid, Racket-style engine in ring 0) --\n%s\n",
              hybrid->stdout_text.c_str());
  const bool identical = native->stdout_text == hybrid->stdout_text;
  std::printf("transcripts identical: %s\n", identical ? "YES" : "NO");
  std::printf("\"To the user, the package appears to run as usual on Linux, "
              "but the bulk of it now runs as a kernel.\"\n");
  return identical ? 0 : 1;
}
