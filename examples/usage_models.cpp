// The three Multiverse usage models of Sec 3.3, side by side, with the same
// computation (a checksum over a work buffer):
//
//   Native      — fully inside the AeroKernel: kernel memory, AeroKernel
//                 threads/events, zero legacy dependence. (Could run on bare
//                 metal with no virtualization at all.)
//   Accelerator — explicit HRT threads mixing AeroKernel calls with legacy
//                 functionality through the merged address space + channels.
//   Incremental — the unmodified program runs with main() in the HRT and
//                 every legacy interaction forwarded.

#include <cstdio>

#include "multiverse/system.hpp"

using namespace mv;
using namespace mv::multiverse;

namespace {

// The "application": checksum 64 KiB of generated data.
std::uint64_t checksum(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) h = (h ^ data[i]) * 1099511628211ull;
  return h;
}

constexpr std::size_t kWork = 64 * 1024;

std::uint64_t run_native_model() {
  // Everything in ring 0, nothing from the ROS.
  HybridSystem system;
  std::uint64_t result = 0;
  (void)system.run_accelerator(
      "native-model",
      [&](ros::SysIface&, MultiverseRuntime& rt, ros::Thread&) {
        naut::Nautilus& nk = rt.naut();
        const std::uint64_t before_fwd = nk.forwarded_syscalls();
        auto worker = nk.thread_create(
            [&nk, &result] {
              auto block = nk.kmalloc(kWork);
              if (!block) return;
              std::vector<std::uint8_t> data(kWork);
              for (std::size_t i = 0; i < kWork; ++i) {
                data[i] = static_cast<std::uint8_t>(i * 31);
              }
              (void)nk.hrt_mem_write(*block, data.data(), data.size());
              std::vector<std::uint8_t> back(kWork);
              (void)nk.hrt_mem_read(*block, back.data(), back.size());
              result = checksum(back.data(), back.size());
            },
            false, nullptr, "native-worker");
        if (worker) (void)nk.thread_join((*worker)->id);
        std::printf("  forwarded syscalls during work: %llu (must be 0)\n",
                    static_cast<unsigned long long>(nk.forwarded_syscalls() -
                                                    before_fwd));
        return 0;
      });
  return result;
}

std::uint64_t run_accelerator_model() {
  HybridSystem system;
  std::uint64_t result = 0;
  auto r = system.run_accelerator(
      "accel-model",
      [&](ros::SysIface&, MultiverseRuntime& rt, ros::Thread& self) {
        (void)rt.hrt_invoke_func(self, [&](ros::SysIface& s) {
          auto& hrt = static_cast<HrtCtx&>(s);
          // Mix: AeroKernel RNG for the data, legacy mmap for the buffer.
          auto buf = s.mmap(0, kWork, ros::kProtRead | ros::kProtWrite,
                            ros::kMapPrivate | ros::kMapAnonymous);
          if (!buf) return;
          std::vector<std::uint8_t> data(kWork);
          for (std::size_t i = 0; i < kWork; ++i) {
            data[i] = static_cast<std::uint8_t>(i * 31);
          }
          (void)s.mem_write(*buf, data.data(), data.size());
          std::vector<std::uint8_t> back(kWork);
          (void)s.mem_read(*buf, back.data(), back.size());
          result = checksum(back.data(), back.size());
          auto stamp = hrt.aerokernel_call("nk_counter_read", 0);
          (void)s.printf("  computed in HRT at cycle %llu\n",
                         static_cast<unsigned long long>(stamp.value_or(0)));
          (void)s.munmap(*buf, kWork);
        });
        return 0;
      });
  if (r) std::printf("%s", r->stdout_text.c_str());
  return result;
}

std::uint64_t run_incremental_model() {
  HybridSystem system;
  std::uint64_t result = 0;
  auto r = system.run_hybrid("incr-model", [&](ros::SysIface& s) {
    // Unmodified legacy-style code: plain mmap + memory + printf.
    auto buf = s.mmap(0, kWork, ros::kProtRead | ros::kProtWrite,
                      ros::kMapPrivate | ros::kMapAnonymous);
    if (!buf) return 1;
    std::vector<std::uint8_t> data(kWork);
    for (std::size_t i = 0; i < kWork; ++i) {
      data[i] = static_cast<std::uint8_t>(i * 31);
    }
    (void)s.mem_write(*buf, data.data(), data.size());
    std::vector<std::uint8_t> back(kWork);
    (void)s.mem_read(*buf, back.data(), back.size());
    result = checksum(back.data(), back.size());
    (void)s.printf("  plain legacy code, forwarded transparently\n");
    return 0;
  });
  if (r) {
    std::printf("%s  forwarded: %llu syscalls, %llu faults\n",
                r->stdout_text.c_str(),
                static_cast<unsigned long long>(r->forwarded_syscalls),
                static_cast<unsigned long long>(r->forwarded_faults));
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== The three Multiverse usage models (paper Sec 3.3) ==\n");
  std::printf("\n[1] Native model (AeroKernel only):\n");
  const std::uint64_t a = run_native_model();
  std::printf("\n[2] Accelerator model (AeroKernel + legacy):\n");
  const std::uint64_t b = run_accelerator_model();
  std::printf("\n[3] Incremental model (unmodified legacy code):\n");
  const std::uint64_t c = run_incremental_model();

  std::printf("\nchecksums: native=%016llx accelerator=%016llx "
              "incremental=%016llx\n",
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b),
              static_cast<unsigned long long>(c));
  const bool ok = a == b && b == c && a != 0;
  std::printf("all three models computed the same result: %s\n",
              ok ? "YES" : "NO");
  return ok ? 0 : 1;
}
