// Quickstart: the paper's Figure 4 — the accelerator usage model.
//
// A user program creates an HRT thread with hrt_invoke_func(); the routine
// calls an AeroKernel function directly (it runs in ring 0, in the Nautilus
// context) and then uses plain printf(), which works because of the merged
// address space (the function linkage is valid) and the event channel (the
// write() system call is forwarded to the Linux ROS).
//
//   static void *routine(void *in) {
//     void *ret = aerokernel_func();
//     printf("Result = %d\n", ret);
//   }
//   int main(int argc, char **argv) {
//     hrt_invoke_func(routine);
//     return 0;
//   }

#include <cstdio>

#include "multiverse/system.hpp"
#include "runtime/scheme/programs.hpp"

using namespace mv;
using namespace mv::multiverse;

int main() {
  std::printf("== Multiverse quickstart: accelerator model (paper Fig 4) ==\n");

  HybridSystem system;  // machine + HVM + Linux ROS + Nautilus + Multiverse

  auto result = system.run_accelerator(
      "quickstart",
      [](ros::SysIface&, MultiverseRuntime& runtime, ros::Thread& self) {
        // hrt_invoke_func(routine): Multiverse spawns a partner thread in
        // the ROS, which asks the HVM to create the HRT thread; `routine`
        // then executes in kernel mode on the HRT core.
        const Status st = runtime.hrt_invoke_func(self, [](ros::SysIface& s) {
          auto& hrt = static_cast<HrtCtx&>(s);
          // Direct AeroKernel call: symbol lookup + kernel-mode invocation.
          auto ret = hrt.aerokernel_call("aerokernel_func", 0);
          // printf: libc formatting + a write() forwarded over the event
          // channel to the ROS.
          (void)s.printf("Result = %d\n", static_cast<int>(ret.value_or(0)));
        });
        return st.is_ok() ? 0 : 1;
      });

  if (!result) {
    std::printf("run failed: %s\n", result.status().to_string().c_str());
    return 1;
  }
  std::printf("program stdout:\n%s", result->stdout_text.c_str());
  std::printf("\n-- what happened under the hood --\n");
  std::printf("HRT boot latency        : %.2f ms (paper: milliseconds, like "
              "fork+exec)\n",
              cycles_to_us(system.hvm().last_boot_cycles()) / 1000.0);
  std::printf("address space merges    : %llu\n",
              static_cast<unsigned long long>(system.hvm().hypercall_count(
                  vmm::Hypercall::kMergeAddressSpaces)));
  std::printf("forwarded system calls  : %llu\n",
              static_cast<unsigned long long>(result->forwarded_syscalls));
  std::printf("execution groups created: %llu\n",
              static_cast<unsigned long long>(system.runtime().groups_created()));
  std::printf("exit code               : %d\n", result->exit_code);
  return result->exit_code;
}
